//! Fixed-interval time series.
//!
//! Models the server-side throughput logs that IOSI (§VI-B) mines: the DDN
//! controllers are polled at a fixed rate and per-interval transferred bytes
//! are recorded. Provides the signal-processing helpers IOSI needs: moving-
//! average smoothing, normalization, cross-correlation alignment,
//! autocorrelation-based period detection, and burst extraction.

use crate::{SimDuration, SimTime};

/// A time series of values accumulated into fixed-width intervals.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: SimDuration,
    bins: Vec<f64>,
}

/// A contiguous burst of activity in a time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Index of the first bin at/above threshold.
    pub start_bin: usize,
    /// Number of consecutive bins at/above threshold.
    pub len: usize,
    /// Sum of bin values over the burst.
    pub volume: f64,
}

impl TimeSeries {
    /// Empty series with the given accumulation interval.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        TimeSeries {
            interval,
            bins: Vec::new(),
        }
    }

    /// Wrap existing bin values.
    pub fn from_bins(interval: SimDuration, bins: Vec<f64>) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        TimeSeries { interval, bins }
    }

    /// The accumulation interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Bin values.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when no bins exist.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Accumulate `value` at time `t`, growing the series as needed.
    pub fn add(&mut self, t: SimTime, value: f64) {
        let bin = (t.as_nanos() / self.interval.as_nanos()) as usize;
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0.0);
        }
        self.bins[bin] += value;
    }

    /// Spread `value` uniformly over `[t, t + d)`.
    pub fn add_spread(&mut self, t: SimTime, d: SimDuration, value: f64) {
        if d.is_zero() {
            self.add(t, value);
            return;
        }
        let start = t.as_nanos();
        let end = start.saturating_add(d.as_nanos());
        let iv = self.interval.as_nanos();
        let first = (start / iv) as usize;
        let last = ((end - 1) / iv) as usize;
        if last >= self.bins.len() {
            self.bins.resize(last + 1, 0.0);
        }
        let total_ns = (end - start) as f64;
        for bin in first..=last {
            let bin_start = bin as u64 * iv;
            let bin_end = bin_start + iv;
            let overlap = end.min(bin_end).saturating_sub(start.max(bin_start)) as f64;
            self.bins[bin] += value * overlap / total_ns;
        }
    }

    /// Sum of all bins.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Maximum bin value (0 when empty).
    pub fn peak(&self) -> f64 {
        self.bins.iter().copied().fold(0.0, f64::max)
    }

    /// Mean bin value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.bins.is_empty() {
            0.0
        } else {
            self.total() / self.bins.len() as f64
        }
    }

    /// Centered moving average with window `w` (odd windows recommended).
    pub fn smooth(&self, w: usize) -> TimeSeries {
        assert!(w >= 1);
        let n = self.bins.len();
        let half = w / 2;
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let sum: f64 = self.bins[lo..hi].iter().sum();
            *o = sum / (hi - lo) as f64;
        }
        TimeSeries::from_bins(self.interval, out)
    }

    /// Zero-mean, unit-variance copy; constant series become all-zero.
    pub fn normalized(&self) -> TimeSeries {
        let m = self.mean();
        let var = self.bins.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
            / self.bins.len().max(1) as f64;
        let sd = var.sqrt();
        let out = if sd == 0.0 {
            vec![0.0; self.bins.len()]
        } else {
            self.bins.iter().map(|x| (x - m) / sd).collect()
        };
        TimeSeries::from_bins(self.interval, out)
    }

    /// Pearson-style correlation of this series against `other` shifted right
    /// by `lag` bins, over their overlap (raw dot product of normalized
    /// series; callers normalize first for comparability).
    pub fn cross_correlation(&self, other: &TimeSeries, lag: usize) -> f64 {
        let a = &self.bins;
        let b = &other.bins;
        if lag >= a.len() {
            return 0.0;
        }
        let n = (a.len() - lag).min(b.len());
        if n == 0 {
            return 0.0;
        }
        let mut dot = 0.0;
        for i in 0..n {
            dot += a[i + lag] * b[i];
        }
        dot / n as f64
    }

    /// Lag in `[0, max_lag]` maximizing cross-correlation with `other`.
    pub fn best_alignment(&self, other: &TimeSeries, max_lag: usize) -> usize {
        let mut best = 0usize;
        let mut best_val = f64::NEG_INFINITY;
        for lag in 0..=max_lag {
            let c = self.cross_correlation(other, lag);
            if c > best_val {
                best_val = c;
                best = lag;
            }
        }
        best
    }

    /// Detect the dominant period (in bins) via autocorrelation: the lag in
    /// `[min_lag, max_lag]` that is a local and global maximum of the
    /// autocorrelation of the mean-removed series. Returns `None` when the
    /// series shows no periodic structure (peak below `0.2` of lag-0 energy).
    pub fn dominant_period(&self, min_lag: usize, max_lag: usize) -> Option<usize> {
        let n = self.bins.len();
        if n < min_lag * 2 || min_lag == 0 {
            return None;
        }
        let max_lag = max_lag.min(n / 2);
        let m = self.mean();
        let centered: Vec<f64> = self.bins.iter().map(|x| x - m).collect();
        let energy: f64 = centered.iter().map(|x| x * x).sum();
        if energy == 0.0 {
            return None;
        }
        let mut best = None;
        let mut best_val = 0.2; // minimum normalized autocorrelation
        for lag in min_lag..=max_lag {
            let mut acc = 0.0;
            for i in lag..n {
                acc += centered[i] * centered[i - lag];
            }
            let norm = acc / energy;
            if norm > best_val {
                best_val = norm;
                best = Some(lag);
            }
        }
        best
    }

    /// Extract bursts: maximal runs of bins `>= threshold`.
    pub fn bursts(&self, threshold: f64) -> Vec<Burst> {
        let mut out = Vec::new();
        let mut cur: Option<Burst> = None;
        for (i, &v) in self.bins.iter().enumerate() {
            if v >= threshold {
                match cur.as_mut() {
                    Some(b) => {
                        b.len += 1;
                        b.volume += v;
                    }
                    None => {
                        cur = Some(Burst {
                            start_bin: i,
                            len: 1,
                            volume: v,
                        });
                    }
                }
            } else if let Some(b) = cur.take() {
                out.push(b);
            }
        }
        if let Some(b) = cur {
            out.push(b);
        }
        out
    }

    /// Element-wise sum of two series with identical intervals; the result
    /// has the longer length.
    pub fn superpose(&self, other: &TimeSeries) -> TimeSeries {
        assert_eq!(self.interval, other.interval, "interval mismatch");
        let n = self.bins.len().max(other.bins.len());
        let mut out = vec![0.0; n];
        for (i, v) in self.bins.iter().enumerate() {
            out[i] += v;
        }
        for (i, v) in other.bins.iter().enumerate() {
            out[i] += v;
        }
        TimeSeries::from_bins(self.interval, out)
    }

    /// Element-wise saturating subtraction (floor at 0).
    pub fn subtract_floor(&self, other: &TimeSeries) -> TimeSeries {
        assert_eq!(self.interval, other.interval, "interval mismatch");
        let out = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, v)| (v - other.bins.get(i).copied().unwrap_or(0.0)).max(0.0))
            .collect();
        TimeSeries::from_bins(self.interval, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn add_accumulates_into_bins() {
        let mut ts = TimeSeries::new(secs(1));
        ts.add(SimTime::from_secs(0), 5.0);
        ts.add(SimTime::from_secs(0), 3.0);
        ts.add(SimTime::from_secs(2), 1.0);
        assert_eq!(ts.bins(), &[8.0, 0.0, 1.0]);
        assert_eq!(ts.total(), 9.0);
        assert_eq!(ts.peak(), 8.0);
    }

    #[test]
    fn add_spread_conserves_mass() {
        let mut ts = TimeSeries::new(secs(1));
        // 10 units over [0.5s, 2.5s): bins get 2.5, 5.0, 2.5.
        ts.add_spread(SimTime::from_secs_f64(0.5), secs(2), 10.0);
        assert!((ts.total() - 10.0).abs() < 1e-9);
        assert!((ts.bins()[0] - 2.5).abs() < 1e-9);
        assert!((ts.bins()[1] - 5.0).abs() < 1e-9);
        assert!((ts.bins()[2] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn add_spread_zero_duration_degenerates_to_add() {
        let mut ts = TimeSeries::new(secs(1));
        ts.add_spread(SimTime::from_secs(3), SimDuration::ZERO, 4.0);
        assert_eq!(ts.bins()[3], 4.0);
    }

    #[test]
    fn smoothing_preserves_flat_series() {
        let ts = TimeSeries::from_bins(secs(1), vec![2.0; 10]);
        let sm = ts.smooth(3);
        assert!(sm.bins().iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn normalization_zero_mean_unit_var() {
        let ts = TimeSeries::from_bins(secs(1), vec![1.0, 2.0, 3.0, 4.0]);
        let n = ts.normalized();
        let mean: f64 = n.bins().iter().sum::<f64>() / 4.0;
        let var: f64 = n.bins().iter().map(|x| x * x).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
        // Constant series normalize to zero, not NaN.
        let c = TimeSeries::from_bins(secs(1), vec![5.0; 4]).normalized();
        assert!(c.bins().iter().all(|x| *x == 0.0));
    }

    #[test]
    fn alignment_finds_known_shift() {
        let pattern = vec![0.0, 0.0, 10.0, 10.0, 0.0, 0.0, 0.0, 0.0];
        let mut shifted = vec![0.0; 3];
        shifted.extend(&pattern);
        let a = TimeSeries::from_bins(secs(1), shifted).normalized();
        let b = TimeSeries::from_bins(secs(1), pattern).normalized();
        assert_eq!(a.best_alignment(&b, 6), 3);
    }

    #[test]
    fn dominant_period_of_square_wave() {
        // Period-20 square wave: 5 hot bins then 15 idle, repeated.
        let mut bins = Vec::new();
        for _ in 0..12 {
            bins.extend(std::iter::repeat_n(100.0, 5));
            bins.extend(std::iter::repeat_n(0.0, 15));
        }
        let ts = TimeSeries::from_bins(secs(1), bins);
        let p = ts.dominant_period(5, 60).expect("periodic");
        assert_eq!(p, 20);
    }

    #[test]
    fn dominant_period_absent_for_noise_free_flat() {
        let ts = TimeSeries::from_bins(secs(1), vec![1.0; 100]);
        assert_eq!(ts.dominant_period(2, 40), None);
    }

    #[test]
    fn bursts_extracted_with_threshold() {
        let ts = TimeSeries::from_bins(secs(1), vec![0.0, 5.0, 6.0, 0.0, 0.0, 7.0, 0.0, 8.0, 9.0]);
        let bursts = ts.bursts(4.0);
        assert_eq!(bursts.len(), 3);
        assert_eq!(
            bursts[0],
            Burst {
                start_bin: 1,
                len: 2,
                volume: 11.0
            }
        );
        assert_eq!(
            bursts[1],
            Burst {
                start_bin: 5,
                len: 1,
                volume: 7.0
            }
        );
        assert_eq!(
            bursts[2],
            Burst {
                start_bin: 7,
                len: 2,
                volume: 17.0
            }
        );
    }

    #[test]
    fn superpose_and_subtract_roundtrip() {
        let a = TimeSeries::from_bins(secs(1), vec![1.0, 2.0, 3.0]);
        let b = TimeSeries::from_bins(secs(1), vec![4.0, 0.0]);
        let s = a.superpose(&b);
        assert_eq!(s.bins(), &[5.0, 2.0, 3.0]);
        let d = s.subtract_floor(&b);
        assert_eq!(d.bins(), a.bins());
    }
}
