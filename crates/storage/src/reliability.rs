//! Fleet reliability: disk failures, rebuild races, and data-loss rates.
//!
//! §IV-A: OLCF "worked with the vendor community to push new features
//! (e.g. parity de-clustering for faster disk rebuilds and improved
//! reliability characteristics) into their products". This module makes
//! that tradeoff quantitative: a discrete-event simulation of disk
//! failures across the fleet, racing rebuilds against further failures in
//! the same RAID-6 group. Losing more members than parity before the
//! rebuild completes is a data-loss event.
//!
//! Parity declustering spreads rebuild reads over many drives, shortening
//! the exposure window roughly in proportion to the declustering factor —
//! at the cost of more drives touching each stripe.
//!
//! Two simulators share one probabilistic model:
//!
//! - [`run_reliability`] is the **oracle**: a full discrete-event run that
//!   materializes every failure, replacement, and rebuild as engine events.
//! - [`run_reliability_fast`] is the **estimator**: an exposure-window
//!   formulation that resolves the overwhelmingly common "window closes
//!   quietly" case analytically and only materializes the rebuild-race
//!   cascade when a second failure actually lands inside an open window.
//!   At production failure rates this is orders of magnitude cheaper per
//!   replication, which is what makes confidence intervals on loss rates
//!   affordable. It optionally applies multilevel importance splitting
//!   ([`SplittingConfig`]) to spend that saved work where the rare event
//!   lives.

use spider_simkit::{Engine, Merge, SimDuration, SimRng, SimTime};

use crate::disk::DiskSpec;
use crate::raid::RaidConfig;

/// Seconds in one AFR year (365.25 days). The calibration constant shared
/// by both simulators, the analytic model, and `expected_failures` — using
/// a single definition is what makes "expected = groups x width x AFR"
/// land exactly when the horizon is one AFR year.
pub const SECS_PER_YEAR: f64 = 365.25 * 86_400.0;

/// Parameters of a fleet reliability study.
#[derive(Debug, Clone)]
pub struct ReliabilityConfig {
    /// RAID groups in the fleet.
    pub groups: u32,
    /// Group geometry.
    pub raid: RaidConfig,
    /// Drive spec (capacity and rebuild rate).
    pub disk: DiskSpec,
    /// Annualized failure rate per drive (AFR), e.g. 0.03.
    pub afr: f64,
    /// Rebuild speed-up factor from parity declustering (1.0 = classic
    /// dedicated-spare rebuild; 4.0 = 4x faster).
    pub declustering: f64,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Replacement delay before a rebuild starts (operator + hot-spare
    /// takeover time).
    pub replacement_delay: SimDuration,
}

impl ReliabilityConfig {
    /// The Spider II fleet: 2,016 groups of 10, 2 TB drives, 3% AFR. The
    /// horizon is one AFR year (365.25 days) so that expected failure
    /// counts calibrate exactly against the AFR definition.
    pub fn spider2() -> Self {
        ReliabilityConfig {
            groups: 2_016,
            raid: RaidConfig::raid6_8p2(),
            disk: DiskSpec::nearline_sas_2tb(),
            afr: 0.03,
            declustering: 1.0,
            horizon: SimDuration::from_secs(31_557_600),
            replacement_delay: SimDuration::from_hours(4),
        }
    }
}

/// Outcome of a reliability run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityReport {
    /// Individual drive failures observed.
    pub disk_failures: u64,
    /// Rebuilds completed.
    pub rebuilds_completed: u64,
    /// Intervals during which some group ran degraded (missing >= 1).
    pub degraded_events: u64,
    /// Groups that lost data (more members down than parity).
    pub data_loss_events: u64,
    /// Expected drive failures for the horizon (analytic, for calibration).
    pub expected_failures: f64,
    /// Engine events delivered by the run. Lost groups retire their event
    /// stream (their remaining failures are tallied directly), so this
    /// stays O(live activity + groups) even for a mostly-lost fleet.
    pub events_processed: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A drive in group `g` fails.
    Fail { group: u32 },
    /// Group `g`'s pending rebuild starts (spare ready).
    RebuildStart { group: u32 },
    /// Group `g` finishes rebuilding one member.
    RebuildDone { group: u32 },
}

/// Run the study. Failures arrive per-group as a Poisson process with rate
/// `width * AFR` (hot-spare semantics: replacement keeps the population
/// constant, so the rate does not decay as members fail); each failure
/// queues a rebuild after `replacement_delay`; rebuilds restore one member
/// at the (declustering-scaled) rebuild rate.
pub fn run_reliability(cfg: &ReliabilityConfig, rng: &mut SimRng) -> ReliabilityReport {
    let width = cfg.raid.width() as f64;
    let per_group_rate_per_sec = width * cfg.afr / SECS_PER_YEAR;
    let mean_gap = SimDuration::from_secs_f64(1.0 / per_group_rate_per_sec);
    let rebuild_time = {
        let rate = cfg.disk.nominal_seq * cfg.disk.rebuild_fraction * cfg.declustering;
        rate.time_for(cfg.disk.capacity)
    };

    let mut engine: Engine<Ev> = Engine::new();
    // Schedule the first failure of every group.
    for group in 0..cfg.groups {
        let gap = rng.exp_duration(mean_gap);
        engine.schedule(SimTime::ZERO + gap, Ev::Fail { group });
    }

    // Per-group state: members missing, rebuild in flight?, failed flag.
    let mut missing = vec![0u32; cfg.groups as usize];
    let mut rebuilding = vec![false; cfg.groups as usize];
    let mut lost = vec![false; cfg.groups as usize];
    let parity = cfg.raid.parity as u32;

    let mut report = ReliabilityReport {
        disk_failures: 0,
        rebuilds_completed: 0,
        degraded_events: 0,
        data_loss_events: 0,
        expected_failures: cfg.groups as f64
            * width
            * cfg.afr
            * (cfg.horizon.as_secs_f64() / SECS_PER_YEAR),
        events_processed: 0,
    };

    let horizon = SimTime::ZERO + cfg.horizon;
    // Thread the RNG through the handler.
    let rng_cell = std::cell::RefCell::new(rng);
    let events = engine.run(horizon, |ctx, ev| match ev {
        Ev::Fail { group } => {
            let g = group as usize;
            report.disk_failures += 1;
            if lost[g] {
                // A dead group's failures can no longer change any state,
                // so spinning one queue event per arrival until the horizon
                // is pure churn. Tally the remaining Poisson arrivals
                // directly — the same draws the events would have made —
                // and retire the group's event stream.
                let mut r = rng_cell.borrow_mut();
                let mut t = ctx.now() + r.exp_duration(mean_gap);
                while t <= horizon {
                    report.disk_failures += 1;
                    t += r.exp_duration(mean_gap);
                }
                return;
            }
            // Next failure of this group.
            let gap = rng_cell.borrow_mut().exp_duration(mean_gap);
            ctx.schedule_in(gap, Ev::Fail { group });
            missing[g] += 1;
            if missing[g] == 1 {
                report.degraded_events += 1;
            }
            if missing[g] > parity {
                lost[g] = true;
                report.data_loss_events += 1;
                return;
            }
            if !rebuilding[g] {
                rebuilding[g] = true;
                ctx.schedule_in(cfg.replacement_delay, Ev::RebuildStart { group });
            }
        }
        Ev::RebuildStart { group } => {
            if lost[group as usize] {
                return;
            }
            ctx.schedule_in(rebuild_time, Ev::RebuildDone { group });
        }
        Ev::RebuildDone { group } => {
            let g = group as usize;
            if lost[g] {
                return;
            }
            missing[g] = missing[g].saturating_sub(1);
            report.rebuilds_completed += 1;
            if missing[g] > 0 {
                // Another member is waiting; rebuild it next.
                ctx.schedule_in(cfg.replacement_delay, Ev::RebuildStart { group });
            } else {
                rebuilding[g] = false;
            }
        }
    });
    report.events_processed = events;
    if spider_obs::enabled() {
        spider_obs::counter_add("reliability_engine_events", events);
    }
    report
}

/// Multilevel importance splitting for [`run_reliability_fast`].
///
/// Data loss requires `missing` to climb from 1 to `parity + 1` inside one
/// exposure window — a staircase of increasingly rare levels. Each time a
/// trajectory crosses up into a level in `2..=parity`, it is split into
/// `factor` branches carrying `1/factor` of its weight: the rare region
/// gets sampled `factor`x more densely per unit of outer-loop work without
/// biasing any weighted estimate (the branch futures are exchangeable by
/// memorylessness of the failure process). RAID-5 (`parity == 1`) has no
/// intermediate levels and is unaffected.
#[derive(Debug, Clone, Copy)]
pub struct SplittingConfig {
    /// Branches per upcrossing (1 disables splitting). Powers of two keep
    /// clone weights exactly representable.
    pub factor: u32,
}

impl SplittingConfig {
    /// No splitting: every trajectory keeps weight 1.
    pub fn off() -> Self {
        SplittingConfig { factor: 1 }
    }

    /// Split `factor` ways at each level upcrossing.
    pub fn new(factor: u32) -> Self {
        assert!(factor >= 1, "splitting factor must be >= 1");
        SplittingConfig { factor }
    }
}

/// Weighted outcome of a fast-path run. Event tallies are `f64` because
/// importance-splitting branches contribute at fractional weight; with
/// splitting off every weight is 1.0 and the tallies are whole numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct FastReliabilityReport {
    /// Weighted drive failures observed.
    pub disk_failures: f64,
    /// Weighted rebuilds completed.
    pub rebuilds_completed: f64,
    /// Weighted degraded intervals (missing 0 -> 1 transitions).
    pub degraded_events: f64,
    /// Weighted data-loss events.
    pub data_loss_events: f64,
    /// Expected drive failures for the horizon (analytic, for calibration).
    pub expected_failures: f64,
    /// Exposure windows whose cascade state was actually simulated.
    pub windows_materialized: u64,
    /// Exposure windows resolved analytically (no second failure arrived
    /// before the window closed).
    pub windows_skipped: u64,
    /// Splitting branches spawned (level upcrossings x (factor - 1)).
    pub split_promotions: u64,
    /// Splitting branches retired without reaching data loss.
    pub split_kills: u64,
}

/// Field-wise sum, so fast-path reports can ride the Monte Carlo
/// reduction directly (`expected_failures` sums too: the merged value is
/// the expectation for the merged replication count).
impl Merge for FastReliabilityReport {
    fn merge(&mut self, other: Self) {
        self.disk_failures += other.disk_failures;
        self.rebuilds_completed += other.rebuilds_completed;
        self.degraded_events += other.degraded_events;
        self.data_loss_events += other.data_loss_events;
        self.expected_failures += other.expected_failures;
        self.windows_materialized += other.windows_materialized;
        self.windows_skipped += other.windows_skipped;
        self.split_promotions += other.split_promotions;
        self.split_kills += other.split_kills;
    }
}

/// One in-flight trajectory of a materialized cascade (the main trajectory
/// or a splitting branch).
struct CloneState {
    missing: u32,
    /// When the member currently rebuilding comes back (seconds).
    restore_at: f64,
    /// Next failure arrival of this trajectory (seconds).
    next_arrival: f64,
    weight: f64,
    rng: SimRng,
}

/// How a trajectory left its cascade.
enum CloneEnd {
    /// All members restored; the group continues from this arrival time.
    Healthy(f64),
    /// Data loss; arrivals continue (tallied) but state is frozen.
    Lost(f64),
    /// The horizon passed with the window still open.
    Horizon,
}

/// Constants of one cascade resolution.
struct EpisodeParams {
    factor: u32,
    parity: u32,
    mean_gap: f64,
    window: f64,
    horizon: f64,
}

/// Advance one trajectory until it heals, loses data, or runs out of
/// horizon, pushing any splitting branches it spawns onto `spawn`.
fn step_clone(
    st: &mut CloneState,
    rep: &mut FastReliabilityReport,
    spawn: &mut Vec<CloneState>,
    p: &EpisodeParams,
) -> CloneEnd {
    loop {
        if st.next_arrival <= p.horizon && st.next_arrival < st.restore_at {
            // Another failure lands while the window is open.
            let t = st.next_arrival;
            rep.disk_failures += st.weight;
            st.missing += 1;
            st.next_arrival = t + st.rng.exp(p.mean_gap);
            if st.missing > p.parity {
                rep.data_loss_events += st.weight;
                return CloneEnd::Lost(st.next_arrival);
            }
            if p.factor > 1 && st.missing >= 2 {
                // Upcrossed into a rarer level: split. The arrival itself
                // was already tallied at the pre-split weight; only the
                // futures divide. Redrawing each branch's next arrival
                // from `t` is fair by memorylessness.
                st.weight /= f64::from(p.factor);
                rep.split_promotions += u64::from(p.factor - 1);
                for k in 0..u64::from(p.factor - 1) {
                    let mut crng = st.rng.fork(k + 1);
                    let next = t + crng.exp(p.mean_gap);
                    spawn.push(CloneState {
                        missing: st.missing,
                        restore_at: st.restore_at,
                        next_arrival: next,
                        weight: st.weight,
                        rng: crng,
                    });
                }
            }
            continue;
        }
        if st.restore_at <= p.horizon {
            // The rebuild in flight completes first.
            st.missing -= 1;
            rep.rebuilds_completed += st.weight;
            if st.missing == 0 {
                return CloneEnd::Healthy(st.next_arrival);
            }
            // Next queued member: replacement delay, then its rebuild.
            st.restore_at += p.window;
            continue;
        }
        return CloneEnd::Horizon;
    }
}

/// Exposure-window reformulation of [`run_reliability`]: statistically the
/// same process, orders of magnitude cheaper per run at production AFRs.
///
/// Per group, failure arrivals are generated directly (no event queue).
/// When a failure opens an exposure window of length
/// `replacement_delay + rebuild_time`, the next arrival is peeked: if it
/// falls outside the window (the overwhelmingly common case), the episode
/// resolves analytically — one completed rebuild, no cascade state. Only
/// when a second failure lands inside the open window is the rebuild-race
/// cascade materialized, optionally with importance splitting (`split`).
///
/// Draw layout (this is what makes common-random-number pairing sharp):
/// the master `rng` is consumed a *fixed* number of times — one stream key
/// plus exactly one uniform per group. That uniform decides via inverse
/// CDF whether the group fails at all this horizon (at real AFRs ~3/4 of
/// groups do not, and resolve in a compare with no `ln`), and doubles as
/// the first arrival time when it does. Each failing group's remaining
/// draws come from a private counter-based stream keyed by group index, so
/// scenarios sharing a cloned `rng` stay draw-aligned on every group even
/// when one scenario's cascade consumes more randomness than another's.
///
/// The returned tallies agree with the oracle's in distribution (they use
/// different draw orders, so individual runs differ); `tests` contains the
/// differential checks at inflated AFRs.
pub fn run_reliability_fast(
    cfg: &ReliabilityConfig,
    split: &SplittingConfig,
    rng: &mut SimRng,
) -> FastReliabilityReport {
    assert!(split.factor >= 1, "splitting factor must be >= 1");
    let width = cfg.raid.width() as f64;
    let mean_gap = SECS_PER_YEAR / (width * cfg.afr);
    let window = {
        let rate = cfg.disk.nominal_seq * cfg.disk.rebuild_fraction * cfg.declustering;
        rate.time_for(cfg.disk.capacity).as_secs_f64() + cfg.replacement_delay.as_secs_f64()
    };
    let p = EpisodeParams {
        factor: split.factor,
        parity: cfg.raid.parity as u32,
        mean_gap,
        window,
        horizon: cfg.horizon.as_secs_f64(),
    };

    let mut rep = FastReliabilityReport {
        disk_failures: 0.0,
        rebuilds_completed: 0.0,
        degraded_events: 0.0,
        data_loss_events: 0.0,
        expected_failures: cfg.groups as f64 * width * cfg.afr * (p.horizon / SECS_PER_YEAR),
        windows_materialized: 0,
        windows_skipped: 0,
        split_promotions: 0,
        split_kills: 0,
    };

    // U = exp(-T/mean) maps a uniform to a first-arrival time T by inverse
    // CDF; u below this threshold means T > horizon (a silent group).
    let q_silent = (-p.horizon / p.mean_gap).exp();
    let stream_key = rng.range_u64(0, u64::MAX);
    for g in 0..cfg.groups {
        let u = rng.f64();
        if u < q_silent {
            continue; // no failure within the horizon; one draw consumed
        }
        let mut grng = SimRng::stream(stream_key, u64::from(g));
        let mut t = -p.mean_gap * u.ln();
        let mut lost = false;
        while t <= p.horizon {
            rep.disk_failures += 1.0;
            if lost {
                // Dead group: arrivals still count (hot spares keep
                // failing), nothing else can change.
                t += grng.exp(p.mean_gap);
                continue;
            }
            rep.degraded_events += 1.0;
            let next = t + grng.exp(p.mean_gap);
            let restore_at = t + p.window;
            if next >= restore_at || next > p.horizon {
                // The window closes (or the horizon lands) before a second
                // failure: resolve without materializing cascade state.
                rep.windows_skipped += 1;
                if restore_at <= p.horizon {
                    rep.rebuilds_completed += 1.0;
                }
                t = next;
                continue;
            }
            rep.windows_materialized += 1;
            let mut spawn: Vec<CloneState> = Vec::new();
            let mut main = CloneState {
                missing: 1,
                restore_at,
                next_arrival: next,
                weight: 1.0,
                rng: grng,
            };
            let end = step_clone(&mut main, &mut rep, &mut spawn, &p);
            grng = main.rng;
            match end {
                CloneEnd::Healthy(at) => t = at,
                CloneEnd::Lost(at) => {
                    lost = true;
                    t = at;
                }
                CloneEnd::Horizon => t = f64::INFINITY,
            }
            // Splitting branches are weighted throwaways: they sharpen the
            // in-episode estimates, then die at episode end. Only the main
            // trajectory (a fair sample of the true process) carries the
            // group forward.
            while let Some(mut c) = spawn.pop() {
                let end = step_clone(&mut c, &mut rep, &mut spawn, &p);
                if !matches!(end, CloneEnd::Lost(_)) {
                    rep.split_kills += 1;
                }
            }
        }
    }
    if spider_obs::enabled() {
        spider_obs::counter_add("reliability_fast_runs", 1);
        spider_obs::counter_add("reliability_windows_materialized", rep.windows_materialized);
        spider_obs::counter_add("reliability_windows_skipped", rep.windows_skipped);
        spider_obs::counter_add("reliability_split_promotions", rep.split_promotions);
        spider_obs::counter_add("reliability_split_kills", rep.split_kills);
    }
    rep
}

/// Analytic sanity model: probability a given group loses data within the
/// horizon, approximating failures during the rebuild exposure window of a
/// first failure. Used to cross-check the simulation's order of magnitude.
pub fn analytic_group_loss_probability(cfg: &ReliabilityConfig) -> f64 {
    let width = cfg.raid.width() as f64;
    let lambda_drive = cfg.afr / SECS_PER_YEAR; // per second
    let exposure = {
        let rate = cfg.disk.nominal_seq * cfg.disk.rebuild_fraction * cfg.declustering;
        rate.time_for(cfg.disk.capacity).as_secs_f64() + cfg.replacement_delay.as_secs_f64()
    };
    // P(first failure) over horizon ~ width * lambda * T; then P(>= parity
    // further failures within the exposure window). Hot-spare semantics:
    // replacement keeps the group at `width` live members, so exposed-window
    // arrivals keep the full `width * lambda` rate — matching both
    // simulators, which never decay a group's arrival rate.
    let t = cfg.horizon.as_secs_f64();
    let p_first = (width * lambda_drive * t).min(1.0);
    let lam_exposed = width * lambda_drive * exposure;
    // P(Poisson(lam) >= parity) = 1 - sum_{i < parity} e^-l l^i / i!
    let mut cdf = 0.0;
    let mut term = (-lam_exposed).exp();
    for i in 0..cfg.raid.parity {
        cdf += term;
        term *= lam_exposed / (i + 1) as f64;
    }
    p_first * (1.0 - cdf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> ReliabilityConfig {
        ReliabilityConfig {
            groups: 200,
            ..ReliabilityConfig::spider2()
        }
    }

    /// Inflated-AFR config for differential tests: losses become common
    /// enough to compare means across a handful of runs.
    fn diff_cfg() -> ReliabilityConfig {
        ReliabilityConfig {
            groups: 64,
            afr: 2.0,
            ..ReliabilityConfig::spider2()
        }
    }

    #[test]
    fn failure_count_matches_afr() {
        let cfg = fast_cfg();
        let mut rng = SimRng::seed_from_u64(1);
        let report = run_reliability(&cfg, &mut rng);
        // 200 groups x 10 drives x 3% AFR x one AFR year = exactly 60.
        assert!(
            (report.expected_failures - 60.0).abs() < 1e-9,
            "{}",
            report.expected_failures
        );
        let rel = (report.disk_failures as f64 - report.expected_failures).abs()
            / report.expected_failures;
        assert!(
            rel < 0.30,
            "{} vs {}",
            report.disk_failures,
            report.expected_failures
        );
    }

    #[test]
    fn rebuilds_keep_up_with_failures() {
        let cfg = fast_cfg();
        let mut rng = SimRng::seed_from_u64(2);
        let report = run_reliability(&cfg, &mut rng);
        // Nearly every failure is repaired within the year.
        assert!(report.rebuilds_completed + 10 >= report.disk_failures);
        // RAID-6 with day-scale rebuilds: data loss is rare at this scale.
        assert!(report.data_loss_events <= 1, "{}", report.data_loss_events);
    }

    #[test]
    fn declustering_shortens_exposure_and_loss_probability() {
        let classic = analytic_group_loss_probability(&ReliabilityConfig::spider2());
        let declustered = analytic_group_loss_probability(&ReliabilityConfig {
            declustering: 4.0,
            ..ReliabilityConfig::spider2()
        });
        assert!(
            declustered < classic / 2.5,
            "4x declustering should cut loss probability >2.5x: {declustered} vs {classic}"
        );
    }

    #[test]
    fn raid5_would_be_much_worse() {
        // The parity margin matters: with 1-parity groups the same fleet
        // sees materially more data loss under a slow-rebuild regime.
        let mut raid5_cfg = fast_cfg();
        raid5_cfg.raid = RaidConfig {
            data: 9,
            parity: 1,
            segment: 128 << 10,
        };
        raid5_cfg.afr = 0.20; // stress AFR to make events visible quickly
        let mut raid6_cfg = fast_cfg();
        raid6_cfg.afr = 0.20;
        let mut rng_a = SimRng::seed_from_u64(3);
        let mut rng_b = SimRng::seed_from_u64(3);
        let raid5 = run_reliability(&raid5_cfg, &mut rng_a);
        let raid6 = run_reliability(&raid6_cfg, &mut rng_b);
        assert!(
            raid5.data_loss_events > raid6.data_loss_events,
            "raid5 {} vs raid6 {}",
            raid5.data_loss_events,
            raid6.data_loss_events
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = fast_cfg();
        let a = run_reliability(&cfg, &mut SimRng::seed_from_u64(4));
        let b = run_reliability(&cfg, &mut SimRng::seed_from_u64(4));
        assert_eq!(a, b);
    }

    #[test]
    fn degraded_events_bound_failures() {
        let cfg = fast_cfg();
        let report = run_reliability(&cfg, &mut SimRng::seed_from_u64(5));
        assert!(report.degraded_events <= report.disk_failures);
        assert!(report.degraded_events > 0);
    }

    #[test]
    fn lost_groups_do_not_churn_the_event_queue() {
        // At a murderous AFR every group dies early in the year. Failure
        // *counts* must keep accumulating (hot spares keep failing) but the
        // event queue must not: dead groups tally their remaining arrivals
        // in one shot, keeping delivered events O(groups).
        let cfg = ReliabilityConfig {
            groups: 100,
            afr: 20.0,
            ..ReliabilityConfig::spider2()
        };
        let report = run_reliability(&cfg, &mut SimRng::seed_from_u64(6));
        assert!(report.data_loss_events >= 95, "{}", report.data_loss_events);
        // ~200 failures per group-year are still all counted...
        assert!(report.disk_failures > 5_000, "{}", report.disk_failures);
        // ...but the queue only carried the pre-loss activity plus one
        // retirement event per group.
        assert!(
            report.events_processed < 60 * u64::from(cfg.groups),
            "{} events for {} groups",
            report.events_processed,
            cfg.groups
        );
    }

    #[test]
    fn fast_path_matches_oracle_statistics() {
        // Differential test at an inflated AFR: the exposure-window
        // formulation must agree with the event-driven oracle on every
        // tallied statistic, within sampling error across runs.
        let cfg = diff_cfg();
        let runs = 20u64;
        let mut oracle = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut fast = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for i in 0..runs {
            let o = run_reliability(&cfg, &mut SimRng::seed_from_u64(100 + i));
            oracle.0 += o.disk_failures as f64;
            oracle.1 += o.rebuilds_completed as f64;
            oracle.2 += o.degraded_events as f64;
            oracle.3 += o.data_loss_events as f64;
            let f = run_reliability_fast(
                &cfg,
                &SplittingConfig::off(),
                &mut SimRng::seed_from_u64(500 + i),
            );
            fast.0 += f.disk_failures;
            fast.1 += f.rebuilds_completed;
            fast.2 += f.degraded_events;
            fast.3 += f.data_loss_events;
        }
        let n = runs as f64;
        // Fleet-level failure counts: expected 1,280 per run; the two
        // estimators must agree within a few percent.
        let (of, ff) = (oracle.0 / n, fast.0 / n);
        assert!((of - ff).abs() / of < 0.03, "failures {of} vs {ff}");
        let (or, fr) = (oracle.1 / n, fast.1 / n);
        assert!((or - fr).abs() / or < 0.05, "rebuilds {or} vs {fr}");
        let (od, fd) = (oracle.2 / n, fast.2 / n);
        assert!((od - fd).abs() / od < 0.05, "degraded {od} vs {fd}");
        // Loss events: mean of a few per run; agree within sampling noise.
        let (ol, fl) = (oracle.3 / n, fast.3 / n);
        assert!(ol > 0.5 && fl > 0.5, "losses {ol} vs {fl}");
        assert!((ol - fl).abs() < 2.0, "losses {ol} vs {fl}");
    }

    #[test]
    fn splitting_preserves_the_estimates_and_reports_activity() {
        let cfg = diff_cfg();
        let runs = 20u64;
        let mut plain_loss = 0.0;
        let mut split_loss = 0.0;
        let mut promotions = 0u64;
        let mut kills = 0u64;
        for i in 0..runs {
            let a = run_reliability_fast(
                &cfg,
                &SplittingConfig::off(),
                &mut SimRng::seed_from_u64(900 + i),
            );
            assert_eq!(a.split_promotions, 0);
            assert_eq!(a.split_kills, 0);
            plain_loss += a.data_loss_events;
            let b = run_reliability_fast(
                &cfg,
                &SplittingConfig::new(4),
                &mut SimRng::seed_from_u64(900 + i),
            );
            split_loss += b.data_loss_events;
            promotions += b.split_promotions;
            kills += b.split_kills;
        }
        let n = runs as f64;
        assert!(promotions > 0, "splitting never fired");
        assert!(kills > 0, "splitting branches never retired");
        assert!(
            (plain_loss / n - split_loss / n).abs() < 2.0,
            "split {} vs plain {}",
            split_loss / n,
            plain_loss / n
        );
    }

    #[test]
    fn fast_path_deterministic_given_seed() {
        let cfg = diff_cfg();
        let split = SplittingConfig::new(4);
        let a = run_reliability_fast(&cfg, &split, &mut SimRng::seed_from_u64(7));
        let b = run_reliability_fast(&cfg, &split, &mut SimRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn fast_path_skips_windows_at_production_rates() {
        // At the real 3% AFR nearly every exposure window closes quietly:
        // the fast path should resolve almost everything analytically.
        let cfg = fast_cfg();
        let rep =
            run_reliability_fast(&cfg, &SplittingConfig::off(), &mut SimRng::seed_from_u64(8));
        assert!((rep.expected_failures - 60.0).abs() < 1e-9);
        assert!(rep.windows_skipped >= 40, "{}", rep.windows_skipped);
        assert!(
            rep.windows_materialized <= 2,
            "{}",
            rep.windows_materialized
        );
        let rel = (rep.disk_failures - rep.expected_failures).abs() / rep.expected_failures;
        assert!(
            rel < 0.35,
            "{} vs {}",
            rep.disk_failures,
            rep.expected_failures
        );
    }

    #[test]
    fn fast_report_merge_sums_fieldwise() {
        let cfg = diff_cfg();
        let mut a =
            run_reliability_fast(&cfg, &SplittingConfig::off(), &mut SimRng::seed_from_u64(9));
        let b = run_reliability_fast(
            &cfg,
            &SplittingConfig::off(),
            &mut SimRng::seed_from_u64(10),
        );
        let (af, bf) = (a.disk_failures, b.disk_failures);
        let (aw, bw) = (a.windows_skipped, b.windows_skipped);
        a.merge(b);
        assert!((a.disk_failures - (af + bf)).abs() < 1e-9);
        assert_eq!(a.windows_skipped, aw + bw);
    }
}
