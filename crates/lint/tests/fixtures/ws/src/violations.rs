//! Fixture: at least one violation of every spider-lint rule, at pinned
//! lines. Never compiled; input data for the integration suite.

use std::collections::HashMap;
use std::time::Instant;

pub fn wall_clock() {
    let _t = Instant::now();
}

pub fn entropy() {
    let rng = thread_rng();
}

pub fn env_read() -> String {
    std::env::var("SPIDER_SEED").unwrap_or_default()
}

pub fn hash_iter(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn par_reduce(v: &[f64]) -> f64 {
    v.par_iter().map(|x| x + 1.0).sum()
}

pub fn unit_cast_accessor(d: SimDuration) -> f64 {
    d.as_nanos() as f64
}

pub fn unit_cast_ctor(x: u32) -> Bandwidth {
    Bandwidth(x as f64)
}

pub fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expect_no_reason(x: Option<u32>) -> u32 {
    x.expect("")
}

pub fn swallowed() {
    let _ = std::fs::remove_file("x");
}
