//! Disk enclosures and their wiring to RAID groups.
//!
//! §IV-E: "In the Spider I file system design, 10 disks in a RAID 6 set were
//! evenly distributed across five disk enclosures." An enclosure (or the path
//! to it) going away therefore removes **two** members from every group it
//! carries — exactly the parity budget of RAID-6, so any group already
//! missing a member loses data. A 10-enclosure layout puts one member per
//! enclosure and tolerates the same event. This module models that wiring so
//! experiment E11 can replay the 2010 incident under both layouts.

use spider_simkit::SimRng;

use crate::raid::{RaidGroup, RaidState};

/// Identifier of an enclosure behind one controller pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnclosureId(pub u32);

/// Operational state of an enclosure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclosureState {
    /// Reachable through at least one controller path.
    Online,
    /// Unreachable: every disk it carries is inaccessible.
    Offline,
}

/// One enclosure.
#[derive(Debug, Clone)]
pub struct Enclosure {
    /// Identifier within the controller pair.
    pub id: EnclosureId,
    /// Current state.
    pub state: EnclosureState,
}

/// How RAID-group members map onto enclosures.
///
/// Member `m` of every group lives in enclosure `m % enclosures`: with 5
/// enclosures and width-10 groups each enclosure carries 2 members per group
/// (the Spider I design); with 10 enclosures it carries 1 (the design the
/// paper says would have tolerated the incident).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnclosureLayout {
    /// Number of enclosures behind the controller pair.
    pub enclosures: usize,
    /// Disks per RAID group.
    pub group_width: usize,
}

impl EnclosureLayout {
    /// The Spider I layout: 5 enclosures, 2 members of each width-10 group
    /// per enclosure.
    pub fn spider1() -> Self {
        EnclosureLayout {
            enclosures: 5,
            group_width: 10,
        }
    }

    /// The hardened layout the paper recommends: 10 enclosures, 1 member of
    /// each group per enclosure.
    pub fn spider2() -> Self {
        EnclosureLayout {
            enclosures: 10,
            group_width: 10,
        }
    }

    /// Members of a group carried by `enclosure`.
    pub fn members_in(&self, enclosure: EnclosureId) -> Vec<usize> {
        (0..self.group_width)
            .filter(|m| m % self.enclosures == enclosure.0 as usize)
            .collect()
    }

    /// Enclosure carrying member `m`.
    pub fn enclosure_of(&self, member: usize) -> EnclosureId {
        EnclosureId((member % self.enclosures) as u32)
    }

    /// Largest number of members of a single group any one enclosure
    /// carries — the blast radius of an enclosure loss.
    pub fn max_members_per_enclosure(&self) -> usize {
        self.group_width.div_ceil(self.enclosures)
    }
}

/// A set of enclosures plus the groups wired through them.
#[derive(Debug)]
pub struct EnclosureSet {
    /// Wiring layout.
    pub layout: EnclosureLayout,
    /// The enclosures.
    pub enclosures: Vec<Enclosure>,
}

impl EnclosureSet {
    /// All enclosures online.
    pub fn new(layout: EnclosureLayout) -> Self {
        EnclosureSet {
            layout,
            enclosures: (0..layout.enclosures)
                .map(|i| Enclosure {
                    id: EnclosureId(i as u32),
                    state: EnclosureState::Online,
                })
                .collect(),
        }
    }

    /// Take an enclosure offline, isolating its members in every group.
    /// Returns the groups that entered [`RaidState::Failed`] as a result.
    pub fn take_offline(
        &mut self,
        id: EnclosureId,
        groups: &mut [RaidGroup],
    ) -> Vec<crate::raid::RaidGroupId> {
        let enc = &mut self.enclosures[id.0 as usize];
        if enc.state == EnclosureState::Offline {
            return Vec::new();
        }
        enc.state = EnclosureState::Offline;
        let members = self.layout.members_in(id);
        let mut newly_failed = Vec::new();
        for g in groups.iter_mut() {
            let before = g.state();
            for &m in &members {
                g.isolate_member(m);
            }
            if g.state() == RaidState::Failed && before != RaidState::Failed {
                newly_failed.push(g.id);
            }
        }
        newly_failed
    }

    /// Bring an enclosure back online, restoring its members in every group
    /// that has not already failed (a failed group's data is gone).
    pub fn bring_online(&mut self, id: EnclosureId, groups: &mut [RaidGroup]) {
        let enc = &mut self.enclosures[id.0 as usize];
        if enc.state == EnclosureState::Online {
            return;
        }
        enc.state = EnclosureState::Online;
        let members = self.layout.members_in(id);
        for g in groups.iter_mut() {
            if g.state() == RaidState::Failed {
                continue;
            }
            for &m in &members {
                g.restore_member(m);
            }
        }
    }

    /// Pick a random online enclosure (for failure injection).
    pub fn random_online(&self, rng: &mut SimRng) -> Option<EnclosureId> {
        let online: Vec<EnclosureId> = self
            .enclosures
            .iter()
            .filter(|e| e.state == EnclosureState::Online)
            .map(|e| e.id)
            .collect();
        if online.is_empty() {
            None
        } else {
            Some(*rng.choose(&online))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{Disk, DiskId, DiskSpec};
    use crate::raid::{RaidConfig, RaidGroupId};

    fn group(id: u32) -> RaidGroup {
        let cfg = RaidConfig::raid6_8p2();
        let members = (0..cfg.width())
            .map(|i| Disk::nominal(DiskId(id * 10 + i as u32), DiskSpec::nearline_sas_2tb()))
            .collect();
        RaidGroup::new(RaidGroupId(id), cfg, members)
    }

    #[test]
    fn spider1_layout_doubles_up_members() {
        let l = EnclosureLayout::spider1();
        assert_eq!(l.max_members_per_enclosure(), 2);
        assert_eq!(l.members_in(EnclosureId(0)), vec![0, 5]);
        assert_eq!(l.members_in(EnclosureId(4)), vec![4, 9]);
        assert_eq!(l.enclosure_of(7), EnclosureId(2));
    }

    #[test]
    fn spider2_layout_isolates_members() {
        let l = EnclosureLayout::spider2();
        assert_eq!(l.max_members_per_enclosure(), 1);
        for e in 0..10 {
            assert_eq!(l.members_in(EnclosureId(e)).len(), 1);
        }
    }

    #[test]
    fn enclosure_loss_degrades_within_parity_when_healthy() {
        // Spider I layout, healthy group: enclosure loss removes 2 members
        // -> degraded(2), no data loss.
        let mut set = EnclosureSet::new(EnclosureLayout::spider1());
        let mut groups = vec![group(0)];
        let failed = set.take_offline(EnclosureId(1), &mut groups);
        assert!(failed.is_empty());
        assert_eq!(groups[0].state(), RaidState::Degraded(2));
    }

    #[test]
    fn enclosure_loss_during_rebuild_is_fatal_on_spider1() {
        // The §IV-E incident: one member already missing, then an enclosure
        // (2 members) drops -> 3 missing -> failed.
        let mut set = EnclosureSet::new(EnclosureLayout::spider1());
        let mut groups = vec![group(0)];
        groups[0].fail_member(2); // member in enclosure 2
        let failed = set.take_offline(EnclosureId(0), &mut groups);
        assert_eq!(failed, vec![RaidGroupId(0)]);
        assert_eq!(groups[0].state(), RaidState::Failed);
    }

    #[test]
    fn enclosure_loss_during_rebuild_survives_on_spider2() {
        let mut set = EnclosureSet::new(EnclosureLayout::spider2());
        let mut groups = vec![group(0)];
        groups[0].fail_member(2);
        let failed = set.take_offline(EnclosureId(0), &mut groups);
        assert!(failed.is_empty());
        assert_eq!(groups[0].state(), RaidState::Degraded(2));
    }

    #[test]
    fn restore_undoes_isolation_but_not_data_loss() {
        let mut set = EnclosureSet::new(EnclosureLayout::spider1());
        let mut groups = vec![group(0), group(1)];
        groups[0].fail_member(2); // group 0 will die, group 1 survives
        set.take_offline(EnclosureId(0), &mut groups);
        assert_eq!(groups[0].state(), RaidState::Failed);
        assert_eq!(groups[1].state(), RaidState::Degraded(2));
        set.bring_online(EnclosureId(0), &mut groups);
        // Group 1 recovers fully; group 0 stays failed (journal lost).
        assert_eq!(groups[1].state(), RaidState::Optimal);
        assert_eq!(groups[0].state(), RaidState::Failed);
    }

    #[test]
    fn double_offline_is_idempotent() {
        let mut set = EnclosureSet::new(EnclosureLayout::spider1());
        let mut groups = vec![group(0)];
        set.take_offline(EnclosureId(3), &mut groups);
        let failed = set.take_offline(EnclosureId(3), &mut groups);
        assert!(failed.is_empty());
        assert_eq!(groups[0].state(), RaidState::Degraded(2));
    }

    #[test]
    fn random_online_skips_offline() {
        let mut set = EnclosureSet::new(EnclosureLayout::spider1());
        let mut groups = vec![group(0)];
        for e in 0..4 {
            set.take_offline(EnclosureId(e), &mut groups);
        }
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(set.random_online(&mut rng), Some(EnclosureId(4)));
        set.take_offline(EnclosureId(4), &mut groups);
        assert_eq!(set.random_online(&mut rng), None);
    }
}
