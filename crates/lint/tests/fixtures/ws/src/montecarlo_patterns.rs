//! Fixture: the Monte Carlo engine idioms from `spider-simkit::montecarlo`
//! — counter-based stream keys instead of entropy, an ordered parallel
//! map with a sequential in-batch fold (the shape the `par-float-reduce`
//! rule demands), and a fixed pairwise tree reduction. All of it must stay
//! clean under `--deny-all` (no thread-order-dependent float accumulation,
//! no wall-clock, no entropy, `expect` with a reason instead of `unwrap`).

use rayon::prelude::*;

/// SplitMix64-style finalizer: the replication stream key is a pure
/// function of (seed, index), never of scheduling.
pub fn stream_key(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ 0xA076_1D64_78BD_642F;
    z = z.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-batch partials are produced by an ordered `map`/`collect` (never a
/// parallel float `reduce`/`sum`), each batch folding its replications
/// sequentially in index order.
pub fn batch_partials(batches: &[(u64, u64)], seed: u64) -> Vec<f64> {
    batches
        .par_iter()
        .map(|&(lo, hi)| {
            let mut acc = 0.0f64;
            for i in lo..hi {
                acc += stream_key(seed, i) as f64 / u64::MAX as f64;
            }
            acc
        })
        .collect()
}

/// Fixed-shape pairwise tree: the float accumulation order is a function
/// of `items.len()` alone, so results are bit-identical across thread
/// counts.
pub fn tree_sum(items: Vec<f64>) -> f64 {
    assert!(!items.is_empty(), "cannot reduce an empty batch list");
    let mut layer = items;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(a + b),
                None => next.push(a),
            }
        }
        layer = next;
    }
    layer.pop().expect("non-empty reduction keeps one value")
}
