//! Fixture: the component-decomposition idioms from `spider-net` — the
//! union-find index over the flow–resource bipartite graph (path-halving
//! `find`, smaller-root-wins `union`, so roots are reproducible functions
//! of the edge list alone), and the fan-out/merge shape of the decomposed
//! solve: an indexed `par_iter().map().collect()` whose parts are
//! re-sorted by component id before the scatter, making the merged rates
//! independent of which thread solved which component. All of it must
//! stay clean under `--deny-all`.

/// Union-find parent array over resource nodes; each entry starts as its
/// own root.
pub fn make_parents(n: u32) -> Vec<u32> {
    (0..n).collect()
}

/// Root of `x` with path halving. Purely index arithmetic: the resulting
/// forest depends only on the union sequence, never on addresses or hashes.
pub fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let grand = parent[parent[x as usize] as usize];
        parent[x as usize] = grand;
        x = grand;
    }
    x
}

/// Union by smaller root id. Root choice is a pure function of the ids, so
/// component labels are identical on every run and every host.
pub fn union(parent: &mut [u32], a: u32, b: u32) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        parent[hi as usize] = lo;
    }
}

/// Group flow indices by component root, emitting groups in ascending root
/// order (a Vec scan, not a hash map, so group order is pinned).
pub fn group_by_root(parent: &mut [u32], flow_root: &[u32]) -> Vec<Vec<u32>> {
    let mut tagged: Vec<(u32, u32)> = flow_root
        .iter()
        .enumerate()
        .map(|(k, &r)| (find(parent, r), k as u32))
        .collect();
    tagged.sort_unstable();
    let mut groups: Vec<Vec<u32>> = Vec::new();
    let mut last_root = None;
    for (root, k) in tagged {
        if last_root != Some(root) {
            last_root = Some(root);
            groups.push(Vec::new());
        }
        groups
            .last_mut()
            .expect("a group was just pushed for this root")
            .push(k);
    }
    groups
}

/// The merge half of the decomposed solve: parts arrive as
/// `(component id, rates)` in whatever order the worker threads finished,
/// are canonicalized by the explicit fixed-order barrier (`sort_by_key` on
/// the component id), and are then scattered to member slots. The output
/// is bit-identical to a sequential solve because each slot is written
/// exactly once and the write order is a function of the ids alone.
pub fn scatter_parts(
    mut parts: Vec<(u32, Vec<f64>)>,
    groups: &[Vec<u32>],
    n_flows: usize,
) -> Vec<f64> {
    parts.sort_by_key(|p| p.0);
    let mut rates = vec![0.0f64; n_flows];
    for ((_, part), members) in parts.iter().zip(groups) {
        for (&k, &r) in members.iter().zip(part) {
            rates[k as usize] = r;
        }
    }
    rates
}
