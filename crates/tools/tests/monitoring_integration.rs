//! Integration: the monitoring stack watching a degrading IB cable plant —
//! LL8 end to end. The poller samples OFED-style counters, the health
//! checks classify them, the checker alerts on transitions, and the
//! in-place diagnosis procedure names the cable to replace.

use spider_net::cable::{diagnose, CableDiagnosis, CablePlant, PortCounters};
use spider_simkit::{Bandwidth, SimRng, SimTime};
use spider_tools::monitor::{CheckOutcome, HealthChecker, PollStore, Severity};

/// Map a cable's counters onto a check outcome, the way the custom OFED
/// wrapper checks did.
fn cable_check(name: &str, counters: &PortCounters) -> CheckOutcome {
    let severity = match diagnose(counters) {
        CableDiagnosis::Healthy => Severity::Ok,
        CableDiagnosis::Reseat => Severity::Warning,
        CableDiagnosis::Replace | CableDiagnosis::Dead => Severity::Critical,
    };
    CheckOutcome {
        name: name.to_owned(),
        severity,
        message: format!(
            "{name}: width {}x, {:.0} sym-err/min",
            counters.active_width, counters.symbol_errors_per_min
        ),
    }
}

#[test]
fn cable_degradation_surfaces_as_an_alert_and_a_bandwidth_drop() {
    let mut plant = CablePlant::new(12, Bandwidth::gb_per_sec(6.0));
    let mut checker = HealthChecker::new();
    let mut store = PollStore::new();

    // Minute 0..5: healthy polls. No alerts, steady bandwidth.
    for minute in 0..5u64 {
        let now = SimTime::from_secs(minute * 60);
        store.record(
            "leaf-07",
            "delivered_bw",
            now,
            plant.delivered().as_bytes_per_sec(),
        );
        for (i, c) in plant.cables.iter().enumerate() {
            assert!(checker
                .ingest(now, cable_check(&format!("leaf-07/cable-{i}"), c))
                .is_none());
        }
    }
    let healthy_bw = plant.delivered().as_bytes_per_sec();

    // Minute 5: a cable drops to 1x width.
    let mut rng = SimRng::seed_from_u64(8);
    let bad = plant.degrade_one(1, &mut rng);
    let now = SimTime::from_secs(5 * 60);
    store.record(
        "leaf-07",
        "delivered_bw",
        now,
        plant.delivered().as_bytes_per_sec(),
    );
    let mut alerts = Vec::new();
    for (i, c) in plant.cables.iter().enumerate() {
        if let Some(a) = checker.ingest(now, cable_check(&format!("leaf-07/cable-{i}"), c)) {
            alerts.push(a);
        }
    }
    // Exactly one alert, Critical, naming the bad cable.
    assert_eq!(alerts.len(), 1);
    assert_eq!(alerts[0].to, Severity::Critical);
    assert!(alerts[0].check.ends_with(&format!("cable-{bad}")));

    // The poll store shows the measurable degradation LL8 warns about.
    let degraded_bw = store
        .series("leaf-07", "delivered_bw")
        .last()
        .unwrap()
        .value;
    assert!(degraded_bw < healthy_bw * 0.95);

    // The in-place survey names the same cable; replacement clears both
    // the alert and the bandwidth loss.
    let findings = plant.survey();
    assert_eq!(findings, vec![(bad, CableDiagnosis::Replace)]);
    plant.replace(bad);
    let later = SimTime::from_secs(20 * 60);
    let recovery = checker.ingest(
        later,
        cable_check(&format!("leaf-07/cable-{bad}"), &plant.cables[bad]),
    );
    assert!(recovery.is_some(), "recovery transition alerts");
    assert_eq!(checker.overall(), Severity::Ok);
    assert!((plant.delivered().as_bytes_per_sec() - healthy_bw).abs() < 1.0);
}

#[test]
fn poll_store_ranks_the_degraded_leaf_last() {
    let mut store = PollStore::new();
    let healthy = CablePlant::new(12, Bandwidth::gb_per_sec(6.0));
    let mut degraded = CablePlant::new(12, Bandwidth::gb_per_sec(6.0));
    let mut rng = SimRng::seed_from_u64(9);
    degraded.degrade_one(1, &mut rng);
    let now = SimTime::from_secs(0);
    store.record(
        "leaf-01",
        "delivered_bw",
        now,
        healthy.delivered().as_bytes_per_sec(),
    );
    store.record(
        "leaf-02",
        "delivered_bw",
        now,
        degraded.delivered().as_bytes_per_sec(),
    );
    let top = store.top_n_latest("delivered_bw", 2);
    assert_eq!(top[0].0, "leaf-01");
    assert_eq!(top[1].0, "leaf-02");
    let _ = (healthy.survey(), degraded.survey());
}
