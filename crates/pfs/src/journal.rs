//! The Lustre journal and the cost of losing it.
//!
//! §IV-E: the 2010 incident took a storage array offline "while still in the
//! rebuild mode, losing journal data for more than a million files managed
//! by that controller pair. Recovery of the lost files took more than two
//! weeks, with 95% successful recovery rate." This module models the
//! journal's exposure window (metadata updates pending commit per controller
//! pair) and the file-by-file recovery campaign that follows a loss.

use std::collections::BTreeMap;

use spider_simkit::SimDuration;

/// Journal state: files with uncommitted metadata, per controller pair.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    pending: BTreeMap<u32, u64>,
}

impl Journal {
    /// Empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Record `files` with in-flight metadata on controller pair `unit`.
    pub fn record(&mut self, unit: u32, files: u64) {
        *self.pending.entry(unit).or_insert(0) += files;
    }

    /// Commit (flush) a unit's journal: its files are now safe.
    pub fn commit(&mut self, unit: u32) -> u64 {
        self.pending.remove(&unit).unwrap_or(0)
    }

    /// Files exposed on a unit right now.
    pub fn exposure(&self, unit: u32) -> u64 {
        self.pending.get(&unit).copied().unwrap_or(0)
    }

    /// Total exposed files.
    pub fn total_exposure(&self) -> u64 {
        self.pending.values().sum()
    }

    /// Lose a unit's journal (the incident): returns the affected file count
    /// and clears the entry — those files now need recovery.
    pub fn lose(&mut self, unit: u32) -> u64 {
        self.pending.remove(&unit).unwrap_or(0)
    }
}

/// The recovery campaign's parameters.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryModel {
    /// Files processed per hour (fsck + manual triage).
    pub files_per_hour: f64,
    /// Probability a file is recoverable.
    pub success_rate: f64,
}

impl RecoveryModel {
    /// Calibrated to the paper: >1 M files took "more than two weeks" at a
    /// "95% successful recovery rate" — about 2,800 files/hour.
    pub fn olcf_2010() -> Self {
        RecoveryModel {
            files_per_hour: 2_800.0,
            success_rate: 0.95,
        }
    }

    /// Run the campaign over `files`.
    pub fn recover(&self, files: u64) -> RecoveryOutcome {
        let recovered = (files as f64 * self.success_rate).round() as u64;
        RecoveryOutcome {
            attempted: files,
            recovered,
            lost: files - recovered,
            duration: SimDuration::from_secs_f64(files as f64 / self.files_per_hour * 3_600.0),
        }
    }
}

/// Result of a recovery campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Files whose journal entries were lost.
    pub attempted: u64,
    /// Files recovered.
    pub recovered: u64,
    /// Files permanently lost.
    pub lost: u64,
    /// Wall-clock duration of the campaign.
    pub duration: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_accounting() {
        let mut j = Journal::new();
        j.record(3, 500_000);
        j.record(3, 600_000);
        j.record(4, 10_000);
        assert_eq!(j.exposure(3), 1_100_000);
        assert_eq!(j.total_exposure(), 1_110_000);
        assert_eq!(j.commit(4), 10_000);
        assert_eq!(j.exposure(4), 0);
        assert_eq!(j.total_exposure(), 1_100_000);
    }

    #[test]
    fn losing_a_unit_returns_its_exposure_once() {
        let mut j = Journal::new();
        j.record(7, 1_200_000);
        assert_eq!(j.lose(7), 1_200_000);
        assert_eq!(j.lose(7), 0, "already lost");
    }

    #[test]
    fn olcf_2010_incident_magnitudes() {
        // >1M files, >2 weeks, 95% recovery — the paper's numbers.
        let outcome = RecoveryModel::olcf_2010().recover(1_100_000);
        assert_eq!(outcome.recovered, 1_045_000);
        assert_eq!(outcome.lost, 55_000);
        let days = outcome.duration.as_secs_f64() / 86_400.0;
        assert!(days > 14.0, "recovery took {days:.1} days (> two weeks)");
        assert!(days < 25.0, "{days:.1}");
    }

    #[test]
    fn small_losses_recover_quickly() {
        let outcome = RecoveryModel::olcf_2010().recover(2_800);
        assert!(outcome.duration <= SimDuration::from_hours(1) + SimDuration::from_secs(1));
        assert_eq!(outcome.attempted, outcome.recovered + outcome.lost);
    }
}
