//! Pass 1 of `--deep`: a lightweight workspace symbol index and call graph.
//!
//! Built from the same token streams the per-file rules consume (tokens are
//! lexed exactly once per file, in `Workspace::load`). The graph is
//! deliberately *token-level* — no `syn`, no type inference, no trait
//! resolution — which keeps the crate dependency-free and the failure modes
//! inspectable, at the price of documented approximations:
//!
//! * Function definitions are `fn <ident>` with a brace-matched body; impl
//!   methods and free functions are indexed by bare name (no receiver type).
//! * Call sites are `<ident>(`, attributed to the innermost enclosing `fn`.
//!   Macro invocations (`name!(…)`) are not calls, but tokens *inside*
//!   macro bodies are scanned like ordinary code.
//! * Resolution is by name: unique-in-workspace names resolve directly;
//!   ambiguous names prefer a same-file definition, then a unique candidate
//!   whose file path matches the call's `::` qualifier or a `use` import
//!   (with `spider_foo` matching `crates/foo/`). Anything still ambiguous
//!   stays unresolved — the taint pass simply sees no edge, so the analysis
//!   under-approximates across untyped method calls (see DESIGN.md "Deep
//!   analysis" for the soundness discussion).

use std::collections::BTreeMap;

use crate::rules::{statement_starts, test_line_ranges};
use crate::tokens::{TokKind, Token};
use crate::Workspace;

/// One call site inside a function body.
#[derive(Debug)]
pub struct Call {
    /// Callee name (last path segment).
    pub name: String,
    /// Immediate `::` qualifier (`ptools` in `ptools::dwalk(…)`), if any.
    pub qualifier: Option<String>,
    /// True for method-call syntax (`.name(…)`).
    pub method: bool,
    /// 1-based position of the callee identifier.
    pub line: u32,
    /// 1-based column of the callee identifier.
    pub col: u32,
    /// First line of the enclosing statement (escape attachment point).
    pub stmt_line: u32,
    /// Index of the callee identifier in the file's significant-token slice.
    pub sig_idx: usize,
}

/// One `fn` definition.
#[derive(Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Index of the defining file in `Workspace::files`.
    pub file: usize,
    /// 1-based position of the `fn` name identifier.
    pub line: u32,
    /// 1-based column of the `fn` name identifier.
    pub col: u32,
    /// Significant-token index range of the body: `(open_brace, close_brace)`.
    /// `(0, 0)` for body-less trait declarations.
    pub body: (usize, usize),
    /// Call sites attributed to this function.
    pub calls: Vec<Call>,
}

/// Per-file side tables shared with the taint pass.
pub struct FileGraph<'ws> {
    /// Significant (non-comment) tokens.
    pub sig: Vec<&'ws Token>,
    /// Statement-start line per significant token.
    pub starts: Vec<u32>,
    /// `#[cfg(test)]` / `#[test]` line ranges.
    pub test_ranges: Vec<(u32, u32)>,
    /// `use` imports: simple name → full path (`dwalk` → `spider_tools::ptools::dwalk`).
    pub imports: BTreeMap<String, String>,
    /// For each significant token, the innermost enclosing function (global
    /// index into [`CallGraph::fns`]).
    pub fn_of: Vec<Option<usize>>,
}

/// The workspace symbol index and call graph.
pub struct CallGraph<'ws> {
    /// Workspace-relative paths, parallel to `Workspace::files`.
    pub rel_paths: Vec<String>,
    /// Per-file tables, parallel to `Workspace::files`.
    pub files: Vec<FileGraph<'ws>>,
    /// Every function definition in the workspace.
    pub fns: Vec<FnDef>,
    /// Bare name → defining function indices (sorted by construction order,
    /// which is sorted (file, position) order).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Reverse call edges: for each function, the resolved `(caller_fn,
    /// call_sig_idx_in_caller)` sites that invoke it, in deterministic order.
    pub callers: Vec<Vec<(usize, usize)>>,
}

/// Identifiers that look like `<ident>(` but are never call sites we want.
const NON_CALL_IDENTS: &[&str] = &[
    "fn", "if", "while", "for", "match", "return", "loop", "as", "in", "let", "mut", "pub", "use",
    "impl", "where", "move", "unsafe", "dyn", "ref", "else", "break", "continue", "Some", "None",
    "Ok", "Err", "self", "Self", "super", "crate",
];

/// Build the call graph for a lexed workspace.
pub fn build(ws: &Workspace) -> CallGraph<'_> {
    let mut g = CallGraph {
        rel_paths: ws.files.iter().map(|f| f.rel.clone()).collect(),
        files: Vec::with_capacity(ws.files.len()),
        fns: Vec::new(),
        by_name: BTreeMap::new(),
        callers: Vec::new(),
    };
    for (file_idx, f) in ws.files.iter().enumerate() {
        let fg = index_file(&mut g, file_idx, &f.tokens);
        g.files.push(fg);
    }
    for (i, f) in g.fns.iter().enumerate() {
        g.by_name.entry(f.name.clone()).or_default().push(i);
    }
    // Resolve every call once and invert into reverse edges.
    let mut callers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); g.fns.len()];
    for (caller, f) in g.fns.iter().enumerate() {
        for c in &f.calls {
            if let Some(callee) = g.resolve(f.file, c) {
                callers[callee].push((caller, c.sig_idx));
            }
        }
    }
    for v in &mut callers {
        v.sort_unstable();
        v.dedup();
    }
    g.callers = callers;
    g
}

/// Walk one file: function nesting, call sites, imports.
fn index_file<'ws>(g: &mut CallGraph<'ws>, file_idx: usize, toks: &'ws [Token]) -> FileGraph<'ws> {
    let sig: Vec<&'ws Token> = toks.iter().filter(|t| !t.is_comment()).collect();
    let starts = statement_starts(&sig);
    let test_ranges = test_line_ranges(toks);
    let mut imports = BTreeMap::new();
    let mut fn_of: Vec<Option<usize>> = vec![None; sig.len()];

    let mut depth = 0i32;
    // (global fn index, brace depth of its body).
    let mut stack: Vec<(usize, i32)> = Vec::new();
    // A `fn` whose body `{` has not appeared yet.
    let mut pending: Option<usize> = None;

    for i in 0..sig.len() {
        let t = sig[i];
        fn_of[i] = stack.last().map(|&(f, _)| f);
        match t.text.as_str() {
            "{" if t.kind == TokKind::Punct => {
                depth += 1;
                if let Some(f) = pending.take() {
                    g.fns[f].body = (i, i);
                    stack.push((f, depth));
                    fn_of[i] = Some(f);
                }
            }
            "}" if t.kind == TokKind::Punct => {
                if let Some(&(f, d)) = stack.last() {
                    if d == depth {
                        g.fns[f].body.1 = i;
                        stack.pop();
                    }
                }
                depth -= 1;
            }
            ";" if t.kind == TokKind::Punct => {
                // Body-less trait declaration: drop the pending fn.
                pending = None;
            }
            "use" if t.kind == TokKind::Ident && stack.is_empty() => {
                parse_use(&sig, i, &mut imports);
            }
            "fn" if t.kind == TokKind::Ident => {
                if let Some(name_tok) = sig.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    let idx = g.fns.len();
                    g.fns.push(FnDef {
                        name: name_tok.text.clone(),
                        file: file_idx,
                        line: name_tok.line,
                        col: name_tok.col,
                        body: (0, 0),
                        calls: Vec::new(),
                    });
                    pending = Some(idx);
                }
            }
            _ if t.kind == TokKind::Ident
                && sig.get(i + 1).is_some_and(|n| n.is_punct('('))
                && !NON_CALL_IDENTS.contains(&t.text.as_str())
                && !(i > 0 && sig[i - 1].is_ident("fn")) =>
            {
                if let Some(&(owner, _)) = stack.last() {
                    let method = i > 0 && sig[i - 1].is_punct('.');
                    let qualifier = (i >= 3
                        && sig[i - 1].is_punct(':')
                        && sig[i - 2].is_punct(':')
                        && sig[i - 3].kind == TokKind::Ident)
                        .then(|| sig[i - 3].text.clone());
                    g.fns[owner].calls.push(Call {
                        name: t.text.clone(),
                        qualifier,
                        method,
                        line: t.line,
                        col: t.col,
                        stmt_line: starts[i],
                        sig_idx: i,
                    });
                }
            }
            _ => {}
        }
    }

    FileGraph {
        sig,
        starts,
        test_ranges,
        imports,
        fn_of,
    }
}

/// Parse one top-level `use` item starting at `sig[i]` into `imports`.
/// Handles nested groups (`use a::{b, c::{d, e as f}};`) and renames; glob
/// imports are ignored.
fn parse_use(sig: &[&Token], i: usize, imports: &mut BTreeMap<String, String>) {
    // Prefix stack: each `{` pushes the current path length.
    let mut path: Vec<String> = Vec::new();
    let mut groups: Vec<usize> = Vec::new();
    let mut alias: Option<String> = None;
    let mut j = i + 1;
    let finalize =
        |path: &[String], alias: &mut Option<String>, imports: &mut BTreeMap<String, String>| {
            if let Some(last) = path.last() {
                let name = alias.take().unwrap_or_else(|| last.clone());
                if name != "*" {
                    imports.insert(name, path.join("::"));
                }
            }
        };
    while j < sig.len() {
        let t = sig[j];
        match t.text.as_str() {
            ";" => {
                finalize(&path, &mut alias, imports);
                return;
            }
            "{" => groups.push(path.len()),
            "}" => {
                finalize(&path, &mut alias, imports);
                let base = groups.pop().unwrap_or(0);
                path.truncate(base);
                // The group itself is one segment level up once closed.
                if !path.is_empty() {
                    path.pop();
                }
            }
            "," => {
                finalize(&path, &mut alias, imports);
                let base = groups.last().copied().unwrap_or(0);
                path.truncate(base);
            }
            "as" => {
                if let Some(a) = sig.get(j + 1).filter(|a| a.kind == TokKind::Ident) {
                    alias = Some(a.text.clone());
                    j += 1;
                }
            }
            ":" => {}
            _ if t.kind == TokKind::Ident || t.text == "*" => path.push(t.text.clone()),
            _ => return, // attribute or something unexpected: bail quietly
        }
        j += 1;
    }
}

impl CallGraph<'_> {
    /// Resolve a call site in `file` to a function index, or `None` when the
    /// name is ambiguous and no hint disambiguates it.
    pub fn resolve(&self, file: usize, call: &Call) -> Option<usize> {
        let cands = self.by_name.get(&call.name)?;
        if cands.len() == 1 {
            return Some(cands[0]);
        }
        if let Some(&c) = cands.iter().find(|&&c| self.fns[c].file == file) {
            return Some(c);
        }
        // Hint segments: the `::` qualifier, else the `use` import path.
        let hint: Vec<String> = match &call.qualifier {
            Some(q) => vec![q.clone()],
            None => match self.files[file].imports.get(&call.name) {
                Some(p) => p.split("::").map(str::to_owned).collect(),
                None => return None,
            },
        };
        let matched: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                let path = &self.rel_paths[self.fns[c].file];
                hint.iter().any(|seg| segment_matches(seg, path))
            })
            .collect();
        match matched.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }
}

/// Does one hint segment (a module/crate name) match a file path?
/// `ptools` matches `crates/tools/src/ptools.rs`; `spider_tools` matches
/// `crates/tools/…`; `crate`/`super`/`self` and std roots never match.
fn segment_matches(seg: &str, path: &str) -> bool {
    if matches!(seg, "crate" | "super" | "self" | "std" | "core" | "alloc") {
        return false;
    }
    let stem = seg.strip_prefix("spider_").unwrap_or(seg);
    path.split(['/', '.']).any(|p| p == seg || p == stem)
        || path.contains(&format!("crates/{stem}/"))
}
