//! Deterministic memory accounting.
//!
//! Scaling a run to 10^6 clients makes memory the binding resource, and a
//! number nobody can see is a number nobody budgets. This module defines the
//! workspace-wide bytes-accounting contract: [`MemFootprint::mem_bytes`]
//! reports the bytes a structure holds in reserved container capacity.
//!
//! The contract is **deterministic**: implementations derive the figure from
//! container capacities (`Vec::capacity`, `BinaryHeap::capacity`, ...), which
//! are pure functions of the allocation history — never from wall-clock
//! sampling or allocator globals, both of which vary run to run and would
//! poison output paths that must stay bit-identical. The numbers are
//! *steady-state reservations*, not RSS: transient allocator overhead and
//! stack frames are out of scope, which is exactly what a regression gate
//! wants — a figure that moves only when the code's data layout moves.

/// Deterministic steady-state byte accounting for a structure.
///
/// # Examples
///
/// ```
/// use spider_simkit::{Engine, MemFootprint, SimTime};
///
/// let mut eng: Engine<u64> = Engine::new();
/// let mut cycle = |eng: &mut Engine<u64>| {
///     let base = eng.now();
///     for i in 0..1024 {
///         eng.schedule(base + spider_simkit::SimDuration::from_secs(i + 1), i);
///     }
///     eng.run_to_completion(|_, _| {});
///     eng.mem_bytes()
/// };
/// // Arena storage retains its capacity for reuse: after the first
/// // load/drain cycle the footprint is flat forever.
/// let steady = cycle(&mut eng);
/// assert_eq!(cycle(&mut eng), steady);
/// ```
pub trait MemFootprint {
    /// Bytes held in reserved container capacity, recursively over owned
    /// storage. Deterministic: a pure function of the structure's allocation
    /// history, suitable for gauges and regression benches.
    fn mem_bytes(&self) -> u64;
}

/// Bytes reserved by a container holding `capacity` elements of type `T`.
///
/// The building block `mem_bytes` implementations sum: pass each
/// `Vec`/`BinaryHeap` capacity through with its element type.
#[must_use]
pub const fn slab_bytes<T>(capacity: usize) -> u64 {
    (capacity * std::mem::size_of::<T>()) as u64
}

impl<T> MemFootprint for Vec<T> {
    fn mem_bytes(&self) -> u64 {
        slab_bytes::<T>(self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_bytes_scales_with_capacity_and_element_size() {
        assert_eq!(slab_bytes::<u8>(16), 16);
        assert_eq!(slab_bytes::<u64>(16), 128);
        assert_eq!(slab_bytes::<f64>(0), 0);
    }

    #[test]
    fn vec_footprint_tracks_capacity_not_length() {
        let mut v: Vec<u64> = Vec::with_capacity(32);
        assert_eq!(v.mem_bytes(), 256);
        v.push(1);
        assert_eq!(v.mem_bytes(), 256, "length changes do not move the gauge");
        v.clear();
        assert_eq!(v.mem_bytes(), 256, "capacity survives a clear");
    }
}
