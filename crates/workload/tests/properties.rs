//! Property-based tests for workload generation and analysis.

use proptest::prelude::*;
use spider_simkit::{SimDuration, SimRng};
use spider_workload::generator::{generate_trace, merge_traces, trace_to_series};
use spider_workload::ior::{run_ior, IorConfig, IorTarget};
use spider_workload::s3d::S3dConfig;
use spider_workload::spec::StreamSpec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated traces are time-sorted, in-horizon, and deterministic.
    #[test]
    fn traces_are_sorted_bounded_deterministic(
        seed in any::<u64>(),
        horizon_s in 30u64..300,
    ) {
        let spec = StreamSpec::analytics_read();
        let horizon = SimDuration::from_secs(horizon_s);
        let gen = |s| {
            let mut rng = SimRng::seed_from_u64(s);
            generate_trace(&spec, 0, horizon, &mut rng)
        };
        let a = gen(seed);
        let b = gen(seed);
        prop_assert_eq!(a.len(), b.len());
        prop_assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        prop_assert!(a.iter().all(|r| r.at.as_nanos() < horizon.as_nanos()));
        prop_assert!(a.iter().all(|r| r.size >= 1));
    }

    /// Merging preserves every request and global time order.
    #[test]
    fn merge_preserves_requests(
        seeds in prop::collection::vec(any::<u64>(), 2..6),
    ) {
        let spec = StreamSpec::interactive();
        let horizon = SimDuration::from_secs(60);
        let traces: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let mut rng = SimRng::seed_from_u64(s);
                generate_trace(&spec, i as u32, horizon, &mut rng)
            })
            .collect();
        let total: usize = traces.iter().map(std::vec::Vec::len).sum();
        let merged = merge_traces(traces);
        prop_assert_eq!(merged.len(), total);
        prop_assert!(merged.windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// The server-log binning conserves bytes for any interval.
    #[test]
    fn series_conserves_bytes(seed in any::<u64>(), interval_s in 1u64..30) {
        let mut rng = SimRng::seed_from_u64(seed);
        let trace = generate_trace(
            &StreamSpec::data_transfer(),
            0,
            SimDuration::from_secs(120),
            &mut rng,
        );
        prop_assume!(!trace.is_empty());
        let series = trace_to_series(&trace, SimDuration::from_secs(interval_s));
        let total: u64 = trace.iter().map(|r| r.size).sum();
        prop_assert!((series.total() - total as f64).abs() < 1.0);
    }

    /// IOR accounting: bytes moved never exceed rate x wall x clients, and
    /// the aggregate never exceeds clients x per-client rate.
    #[test]
    fn ior_accounting_bounds(
        clients in 1u32..200,
        per_client_mb in 1.0f64..200.0,
    ) {
        struct Flat(f64);
        impl IorTarget for Flat {
            fn client_rates(&self, cfg: &IorConfig) -> Vec<spider_simkit::Bandwidth> {
                vec![spider_simkit::Bandwidth::mb_per_sec(self.0); cfg.clients as usize]
            }
        }
        let mut cfg = IorConfig::paper_scaling(clients, 1 << 20);
        cfg.iterations = 2;
        let rep = run_ior(&Flat(per_client_mb), &cfg);
        let bound = per_client_mb * 1e6 * clients as f64;
        prop_assert!(rep.mean.as_bytes_per_sec() <= bound * 1.001);
        let wall = cfg.stonewall.as_secs_f64();
        prop_assert!(rep.bytes_moved as f64 <= bound * wall * cfg.iterations as f64 * 1.001);
    }

    /// S3D traces always conserve the checkpoint volume.
    #[test]
    fn s3d_volume_conserved(ranks in 1u32..64, seed in any::<u64>()) {
        let cfg = S3dConfig::small(ranks);
        let mut rng = SimRng::seed_from_u64(seed);
        let trace = cfg.trace(&mut rng);
        let total: u64 = trace.iter().map(|r| r.size).sum();
        prop_assert_eq!(
            total,
            cfg.checkpoint_bytes() * cfg.checkpoint_times().len() as u64
        );
    }
}
