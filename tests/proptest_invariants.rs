//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;

use spider::net::maxmin::{FlowSpec, MaxMinProblem};
use spider::net::torus::{Coord, Torus};
use spider::pfs::layout::StripeLayout;
use spider::pfs::namespace::{FileMeta, Namespace};
use spider::pfs::ost::OstId;
use spider::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Max-min allocations never oversubscribe any resource and never give
    /// a flow more than its cap.
    #[test]
    fn maxmin_is_feasible(
        caps in prop::collection::vec(0.0f64..100.0, 1..20),
        flows in prop::collection::vec(
            (prop::collection::vec(0usize..20, 1..5), prop::option::of(0.1f64..50.0)),
            1..40
        )
    ) {
        let mut p = MaxMinProblem::new();
        let res: Vec<_> = caps.iter().map(|&c| p.add_resource(c)).collect();
        let specs: Vec<FlowSpec> = flows
            .iter()
            .map(|(rs, cap)| {
                let mut f = FlowSpec::new(
                    rs.iter().map(|&i| res[i % res.len()]).collect(),
                );
                if let Some(c) = cap {
                    f = f.with_cap(*c);
                }
                f
            })
            .collect();
        let rates = p.solve(&specs);
        // Feasibility.
        let mut usage = vec![0.0f64; caps.len()];
        for (f, r) in specs.iter().zip(&rates) {
            prop_assert!(*r >= -1e-9);
            if let Some(c) = f.cap {
                prop_assert!(*r <= c + 1e-6);
            }
            for rr in &f.resources {
                usage[rr.0] += r;
            }
        }
        for (u, c) in usage.iter().zip(&caps) {
            prop_assert!(*u <= c + 1e-6, "resource oversubscribed: {u} > {c}");
        }
    }

    /// The event-driven solver and the reference full-rescan solver agree
    /// to 1e-6 on arbitrary problems: random paths (with duplicates),
    /// optional caps, fractional weights, and exhausted (zero-capacity)
    /// resources.
    #[test]
    fn maxmin_event_driven_matches_reference(
        caps in prop::collection::vec(
            prop::option::of(0.5f64..100.0), // None -> a dead resource
            1..16
        ),
        flows in prop::collection::vec(
            (
                prop::collection::vec(0usize..16, 1..5),
                prop::option::of(0.05f64..50.0),
                prop::option::of(0.25f64..16.0),
            ),
            1..50
        )
    ) {
        let mut p = MaxMinProblem::new();
        let res: Vec<_> = caps
            .iter()
            .map(|c| p.add_resource(c.unwrap_or(0.0)))
            .collect();
        let specs: Vec<FlowSpec> = flows
            .iter()
            .map(|(rs, cap, weight)| {
                let mut f = FlowSpec::new(
                    rs.iter().map(|&i| res[i % res.len()]).collect(),
                );
                if let Some(c) = cap {
                    f = f.with_cap(*c);
                }
                if let Some(w) = weight {
                    f = f.with_weight(*w);
                }
                f
            })
            .collect();
        let fast = p.solve(&specs);
        let slow = p.solve_reference(&specs);
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                "flow {i}: event-driven {a} vs reference {b}"
            );
        }
        // Conservation with weights: no resource carries more than its
        // capacity of weighted flow.
        let mut usage = vec![0.0f64; caps.len()];
        for (f, r) in specs.iter().zip(&fast) {
            for rr in &f.resources {
                usage[rr.0] += f.weight * r;
            }
        }
        for (u, c) in usage.iter().zip(&caps) {
            let c = c.unwrap_or(0.0);
            prop_assert!(*u <= c + 1e-6, "resource oversubscribed: {u} > {c}");
        }
        // Max-min bottleneck property: every flow is at its cap, on a
        // saturated resource, or (degenerately) on a dead resource.
        for (f, r) in specs.iter().zip(&fast) {
            let at_cap = f.cap.is_some_and(|c| *r >= c - 1e-6);
            let bottlenecked = f.resources.iter().any(|rr| {
                usage[rr.0] >= caps[rr.0].unwrap_or(0.0) - 1e-6
            });
            prop_assert!(
                at_cap || bottlenecked,
                "flow unconstrained at rate {r}"
            );
        }
    }

    /// Dimension-ordered routes have length equal to the wraparound
    /// distance and the distance is symmetric.
    #[test]
    fn torus_routes_are_shortest(
        dims in (1u16..10, 1u16..10, 1u16..10),
        a in (0u16..10, 0u16..10, 0u16..10),
        b in (0u16..10, 0u16..10, 0u16..10),
    ) {
        let t = Torus::new(dims.0, dims.1, dims.2);
        let ca = Coord::new(a.0 % dims.0, a.1 % dims.1, a.2 % dims.2);
        let cb = Coord::new(b.0 % dims.0, b.1 % dims.1, b.2 % dims.2);
        prop_assert_eq!(t.distance(ca, cb), t.distance(cb, ca));
        prop_assert_eq!(t.route(ca, cb).len() as u32, t.distance(ca, cb));
        // Distance bounded by half-perimeter.
        let bound = dims.0 / 2 + dims.1 / 2 + dims.2 / 2;
        prop_assert!(t.distance(ca, cb) <= bound as u32);
    }

    /// Stripe extent mapping conserves bytes and never touches OSTs outside
    /// the layout.
    #[test]
    fn stripe_mapping_conserves_bytes(
        n_osts in 1u32..16,
        stripe_size in prop::sample::select(vec![64u64 << 10, 1 << 20, 4 << 20]),
        offset in 0u64..(1 << 34),
        len in 0u64..(1 << 28),
    ) {
        let layout = StripeLayout::new((0..n_osts).map(OstId).collect())
            .with_stripe_size(stripe_size);
        let per = layout.bytes_per_ost(offset, len);
        prop_assert_eq!(per.len(), n_osts as usize);
        prop_assert_eq!(per.iter().sum::<u64>(), len);
        // Each OST gets at most ceil(len/stripe)+1 chunks' worth.
        for &b in &per {
            prop_assert!(b <= len);
        }
    }

    /// Namespace accounting stays consistent under arbitrary create/unlink
    /// sequences.
    #[test]
    fn namespace_accounting_is_consistent(
        ops in prop::collection::vec((0u8..3, 0u64..(1 << 24)), 1..60)
    ) {
        let mut ns = Namespace::new();
        let dir = ns.mkdir_p("/x").unwrap();
        let mut live: Vec<spider::pfs::namespace::InodeId> = Vec::new();
        let mut expected_bytes = 0u64;
        let mut counter = 0u32;
        for (op, size) in ops {
            match op {
                0 | 1 => {
                    let f = ns
                        .create_file(
                            dir,
                            &format!("f{counter}"),
                            FileMeta {
                                size,
                                atime: SimTime::ZERO,
                                mtime: SimTime::ZERO,
                                ctime: SimTime::ZERO,
                                stripe: StripeLayout::new(vec![OstId(0)]),
                                project: 0,
                            },
                        )
                        .unwrap();
                    counter += 1;
                    expected_bytes += size;
                    live.push(f);
                }
                _ => {
                    if let Some(f) = live.pop() {
                        let meta = ns.unlink(f).unwrap();
                        expected_bytes -= meta.size;
                    }
                }
            }
            prop_assert_eq!(ns.total_bytes(), expected_bytes);
            prop_assert_eq!(ns.file_count(), live.len() as u64);
        }
        prop_assert_eq!(ns.du(dir), expected_bytes);
    }

    /// The DES engine delivers every scheduled event exactly once, in
    /// non-decreasing time order.
    #[test]
    fn engine_delivers_everything_in_order(
        times in prop::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut eng: Engine<usize> = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.schedule(SimTime(t), i);
        }
        let mut seen = vec![false; times.len()];
        let mut last = SimTime::ZERO;
        eng.run_to_completion(|ctx, ev| {
            assert!(ctx.now() >= last);
            last = ctx.now();
            assert!(!seen[ev]);
            seen[ev] = true;
        });
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Bandwidth::time_for and bytes_over are inverse within rounding.
    #[test]
    fn bandwidth_time_roundtrip(
        mbps in 1.0f64..2_000.0,
        bytes in 1u64..(1 << 40),
    ) {
        let bw = Bandwidth::mb_per_sec(mbps);
        let t = bw.time_for(bytes);
        let back = bw.bytes_over(t);
        let rel = (back - bytes as f64).abs() / bytes as f64;
        prop_assert!(rel < 1e-3, "{back} vs {bytes}");
    }
}
