//! Titan's Gemini network geometry.
//!
//! Titan is a Cray XK7: 200 cabinets on a 25x8 floor grid (Figure 2 plots
//! exactly this grid), each cabinet holding 3 cages of 8 blades, 4 nodes per
//! blade, two nodes per Gemini ASIC. The Gemini torus is 25x16x24: X indexes
//! the cabinet column, Y carries two values per cabinet row (upper/lower
//! half), and Z runs through the 24 Gemini positions of a cabinet.
//!
//! Per-dimension link capacities differ: Y links have half the width of X/Z
//! links — one of the topology facts the fine-grained routing work (§V-B)
//! had to respect.

use spider_simkit::Bandwidth;

use crate::torus::{Coord, LinkId, Torus};

/// Titan's network geometry and capacities.
#[derive(Debug, Clone)]
pub struct TitanGeometry {
    /// The Gemini torus (25 x 16 x 24).
    pub torus: Torus,
    /// Per-node injection bandwidth onto the torus.
    pub injection: Bandwidth,
    /// X-dimension link capacity.
    pub x_link: Bandwidth,
    /// Y-dimension link capacity (half-width links).
    pub y_link: Bandwidth,
    /// Z-dimension link capacity.
    pub z_link: Bandwidth,
}

impl TitanGeometry {
    /// Cabinet columns on the floor.
    pub const CABINET_COLS: u16 = 25;
    /// Cabinet rows on the floor.
    pub const CABINET_ROWS: u16 = 8;

    /// The production Titan geometry.
    pub fn titan() -> Self {
        TitanGeometry {
            torus: Torus::new(25, 16, 24),
            injection: Bandwidth::gb_per_sec(6.0),
            x_link: Bandwidth::gb_per_sec(9.4),
            y_link: Bandwidth::gb_per_sec(4.7),
            z_link: Bandwidth::gb_per_sec(9.4),
        }
    }

    /// A reduced geometry for fast tests (5x4x6 torus, 5x2 cabinet grid is
    /// implied by y/2).
    pub fn small_test() -> Self {
        TitanGeometry {
            torus: Torus::new(5, 4, 6),
            injection: Bandwidth::gb_per_sec(6.0),
            x_link: Bandwidth::gb_per_sec(9.4),
            y_link: Bandwidth::gb_per_sec(4.7),
            z_link: Bandwidth::gb_per_sec(9.4),
        }
    }

    /// Capacity of a specific link (by its dimension).
    pub fn link_capacity(&self, link: LinkId) -> Bandwidth {
        match self.torus.link_dim(link) {
            0 => self.x_link,
            1 => self.y_link,
            _ => self.z_link,
        }
    }

    /// Floor-grid cabinet `(col, row)` of a torus coordinate: column is X,
    /// row is Y/2 (two Y values per cabinet row).
    pub fn cabinet_of(&self, c: Coord) -> (u16, u16) {
        (c.x, c.y / 2)
    }

    /// All torus coordinates inside a floor cabinet.
    pub fn coords_in_cabinet(&self, col: u16, row: u16) -> Vec<Coord> {
        let dims = self.torus.dims();
        let mut out = Vec::new();
        for y in [row * 2, row * 2 + 1] {
            if y >= dims[1] {
                continue;
            }
            for z in 0..dims[2] {
                out.push(Coord::new(col, y, z));
            }
        }
        out
    }

    /// Number of cabinets on the floor for this geometry.
    pub fn cabinets(&self) -> (u16, u16) {
        let dims = self.torus.dims();
        (dims[0], dims[1] / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_dimensions() {
        let g = TitanGeometry::titan();
        assert_eq!(g.torus.dims(), [25, 16, 24]);
        // 9,600 Gemini ASICs x 2 nodes = 19,200 node slots, covering the
        // 18,688 compute nodes plus service nodes.
        assert_eq!(g.torus.nodes(), 9_600);
        assert_eq!(g.cabinets(), (25, 8));
    }

    #[test]
    fn y_links_are_half_width() {
        let g = TitanGeometry::titan();
        let c = Coord::new(0, 0, 0);
        let x = g.link_capacity(g.torus.link_id(c, 0, true));
        let y = g.link_capacity(g.torus.link_id(c, 1, true));
        let z = g.link_capacity(g.torus.link_id(c, 2, true));
        assert!((x.as_bytes_per_sec() - z.as_bytes_per_sec()).abs() < 1.0);
        assert!((y.as_bytes_per_sec() * 2.0 - x.as_bytes_per_sec()).abs() < 1.0);
    }

    #[test]
    fn cabinet_mapping_roundtrip() {
        let g = TitanGeometry::titan();
        let c = Coord::new(13, 7, 20);
        assert_eq!(g.cabinet_of(c), (13, 3));
        let members = g.coords_in_cabinet(13, 3);
        assert_eq!(members.len(), 48, "2 Y-values x 24 Z positions");
        assert!(members.contains(&c));
        for m in &members {
            assert_eq!(g.cabinet_of(*m), (13, 3));
        }
    }

    #[test]
    fn every_node_is_in_exactly_one_cabinet() {
        let g = TitanGeometry::small_test();
        let (cols, rows) = g.cabinets();
        let mut count = 0;
        for col in 0..cols {
            for row in 0..rows {
                count += g.coords_in_cabinet(col, row).len();
            }
        }
        assert_eq!(count, g.torus.nodes());
    }
}
