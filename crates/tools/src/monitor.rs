//! The monitoring stack (§IV-A "Monitoring", Lesson Learned 8).
//!
//! Three pieces, mirroring what OLCF built:
//!
//! - [`HealthChecker`]: Nagios-style scheduled checks with state-transition
//!   alerting and flap suppression.
//! - [`EventCoalescer`]: the Lustre Health Checker idea — "a coherent
//!   collection of associated errors from a Lustre failure condition",
//!   correlating raw events into incidents and discriminating hardware
//!   events from Lustre software issues.
//! - [`PollStore`]: the DDN-tool idea — poll controllers "for various pieces
//!   of information (e.g. I/O request sizes, write and read bandwidths) at
//!   regular rates", store samples, and answer standardized queries.

use std::collections::BTreeMap;

use spider_simkit::{SimDuration, SimTime};

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// All good.
    Ok,
    /// Degraded but serving.
    Warning,
    /// Service-affecting.
    Critical,
}

/// One check execution result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Check name ("ib-hca-errors", "lustre-ost-state", ...).
    pub name: String,
    /// Result severity.
    pub severity: Severity,
    /// Operator-facing message.
    pub message: String,
}

/// An emitted alert (a state *transition*, not a state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// When.
    pub at: SimTime,
    /// Which check.
    pub check: String,
    /// Previous severity.
    pub from: Severity,
    /// New severity.
    pub to: Severity,
    /// Message of the transitioning outcome.
    pub message: String,
}

/// Scheduled checks with transition-based alerting.
#[derive(Debug, Default)]
pub struct HealthChecker {
    state: BTreeMap<String, Severity>,
    alerts: Vec<Alert>,
    /// Re-alert suppression: identical transitions within this window are
    /// dropped (flap damping).
    suppression: BTreeMap<String, SimTime>,
    suppression_window: SimDuration,
}

impl HealthChecker {
    /// A checker with a 5-minute flap-suppression window.
    pub fn new() -> Self {
        HealthChecker {
            suppression_window: SimDuration::from_mins(5),
            ..Default::default()
        }
    }

    /// Ingest a check outcome at `now`; returns the alert if one fired.
    pub fn ingest(&mut self, now: SimTime, outcome: CheckOutcome) -> Option<Alert> {
        let prev = self
            .state
            .insert(outcome.name.clone(), outcome.severity)
            .unwrap_or(Severity::Ok);
        if prev == outcome.severity {
            return None;
        }
        // Flap suppression: drop repeat transitions of the same check
        // within the window unless escalating to Critical.
        if outcome.severity != Severity::Critical {
            if let Some(&last) = self.suppression.get(&outcome.name) {
                if now.since(last) < self.suppression_window {
                    return None;
                }
            }
        }
        self.suppression.insert(outcome.name.clone(), now);
        let alert = Alert {
            at: now,
            check: outcome.name,
            from: prev,
            to: outcome.severity,
            message: outcome.message,
        };
        self.alerts.push(alert.clone());
        Some(alert)
    }

    /// Current severity of a check.
    pub fn current(&self, check: &str) -> Severity {
        self.state.get(check).copied().unwrap_or(Severity::Ok)
    }

    /// All alerts so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Worst current severity across all checks.
    pub fn overall(&self) -> Severity {
        self.state.values().copied().max().unwrap_or(Severity::Ok)
    }
}

/// Raw event classes reaching the coalescer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Physical: disk, enclosure, cable, power.
    Hardware,
    /// Lustre software: evictions, timeouts, LBUG.
    LustreSoftware,
    /// Network: HCA errors, link degradation.
    Network,
}

/// A raw monitoring event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEvent {
    /// When.
    pub at: SimTime,
    /// Emitting component ("oss-017", "ssu-03/enclosure-2", ...).
    pub component: String,
    /// Class.
    pub class: EventClass,
    /// Text.
    pub detail: String,
}

/// A coalesced incident: associated errors grouped into one story.
#[derive(Debug, Clone)]
pub struct Incident {
    /// First event time.
    pub start: SimTime,
    /// Last event time.
    pub end: SimTime,
    /// Events in the incident.
    pub events: Vec<RawEvent>,
    /// Does the incident include hardware evidence? (LL8: lets admins
    /// "discriminate between hardware events and Lustre software issues".)
    pub has_hardware_cause: bool,
}

/// Groups events that arrive within `window` of the incident's last event.
#[derive(Debug)]
pub struct EventCoalescer {
    window: SimDuration,
    open: Option<Incident>,
    closed: Vec<Incident>,
}

impl EventCoalescer {
    /// Coalescer with the given association window.
    pub fn new(window: SimDuration) -> Self {
        EventCoalescer {
            window,
            open: None,
            closed: Vec::new(),
        }
    }

    /// Ingest one event. Events are expected roughly in time order; a
    /// slightly out-of-order event (earlier than the open incident's end)
    /// is absorbed into the open incident without regressing its span.
    pub fn ingest(&mut self, ev: RawEvent) {
        match self.open.as_mut() {
            Some(inc) if ev.at.since(inc.end) <= self.window => {
                inc.start = inc.start.min(ev.at);
                inc.end = inc.end.max(ev.at);
                inc.has_hardware_cause |= ev.class == EventClass::Hardware;
                inc.events.push(ev);
            }
            _ => {
                if let Some(done) = self.open.take() {
                    self.closed.push(done);
                }
                self.open = Some(Incident {
                    start: ev.at,
                    end: ev.at,
                    has_hardware_cause: ev.class == EventClass::Hardware,
                    events: vec![ev],
                });
            }
        }
    }

    /// Close the open incident (end of stream) and return all incidents.
    pub fn finish(mut self) -> Vec<Incident> {
        if let Some(done) = self.open.take() {
            self.closed.push(done);
        }
        self.closed
    }
}

/// One controller counter sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// When.
    pub at: SimTime,
    /// Value (bytes/s, IOPS, ...).
    pub value: f64,
}

/// The DDN-tool sample store: per (controller, metric) time series with
/// standardized queries.
///
/// Series are kept as `controller -> metric -> samples` so that reads
/// (`mean_over`, `series`) look keys up with borrowed `&str` — no `String`
/// allocation per query, which matters when the poll loop interrogates the
/// store once per controller per tick.
#[derive(Debug, Default)]
pub struct PollStore {
    series: BTreeMap<String, BTreeMap<String, Vec<Sample>>>,
}

impl PollStore {
    /// Empty store.
    pub fn new() -> Self {
        PollStore::default()
    }

    /// Record one poll result.
    pub fn record(&mut self, controller: &str, metric: &str, at: SimTime, value: f64) {
        // Fast path: both keys already exist (every poll after the first),
        // found without allocating.
        if let Some(samples) = self
            .series
            .get_mut(controller)
            .and_then(|m| m.get_mut(metric))
        {
            samples.push(Sample { at, value });
            return;
        }
        self.series
            .entry(controller.to_owned())
            .or_default()
            .entry(metric.to_owned())
            .or_default()
            .push(Sample { at, value });
    }

    /// Mean of a metric over `[from, to]` for one controller.
    pub fn mean_over(&self, controller: &str, metric: &str, from: SimTime, to: SimTime) -> f64 {
        let mut sum = 0.0;
        let mut count = 0u64;
        for s in self.series(controller, metric) {
            if s.at >= from && s.at <= to {
                sum += s.value;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// The `n` controllers with the highest latest value of `metric` —
    /// the standardized "who is busy / who is lagging" report.
    pub fn top_n_latest(&self, metric: &str, n: usize) -> Vec<(String, f64)> {
        let mut latest: Vec<(String, f64)> = self
            .series
            .iter()
            .filter_map(|(c, metrics)| {
                metrics
                    .get(metric)
                    .and_then(|v| v.last())
                    .map(|s| (c.clone(), s.value))
            })
            .collect();
        latest.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        latest.truncate(n);
        latest
    }

    /// Full series for export. Borrowed lookup: no allocation.
    pub fn series(&self, controller: &str, metric: &str) -> &[Sample] {
        self.series
            .get(controller)
            .and_then(|m| m.get(metric))
            .map_or(&[], std::vec::Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn outcome(name: &str, severity: Severity) -> CheckOutcome {
        CheckOutcome {
            name: name.to_owned(),
            severity,
            message: format!("{name} is {severity:?}"),
        }
    }

    #[test]
    fn alerts_fire_on_transitions_only() {
        let mut hc = HealthChecker::new();
        assert!(hc
            .ingest(at(0), outcome("ost-state", Severity::Ok))
            .is_none());
        let a = hc
            .ingest(at(10), outcome("ost-state", Severity::Critical))
            .expect("transition alert");
        assert_eq!(a.from, Severity::Ok);
        assert_eq!(a.to, Severity::Critical);
        // Same state again: no alert.
        assert!(hc
            .ingest(at(20), outcome("ost-state", Severity::Critical))
            .is_none());
        assert_eq!(hc.overall(), Severity::Critical);
    }

    #[test]
    fn flapping_is_suppressed_but_critical_always_fires() {
        let mut hc = HealthChecker::new();
        hc.ingest(at(0), outcome("ib-link", Severity::Warning));
        hc.ingest(at(10), outcome("ib-link", Severity::Ok));
        // Rapid Warning again within the window: suppressed.
        assert!(hc
            .ingest(at(20), outcome("ib-link", Severity::Warning))
            .is_none());
        // Escalation to Critical cuts through suppression.
        assert!(hc
            .ingest(at(30), outcome("ib-link", Severity::Critical))
            .is_some());
    }

    #[test]
    fn recovery_alert_after_window() {
        let mut hc = HealthChecker::new();
        hc.ingest(at(0), outcome("mds", Severity::Critical));
        let rec = hc.ingest(at(600), outcome("mds", Severity::Ok));
        assert!(rec.is_some(), "recovery after the window alerts");
        assert_eq!(hc.current("mds"), Severity::Ok);
    }

    #[test]
    fn coalescer_groups_cascade_and_identifies_hardware() {
        // The 2010-style cascade: enclosure path drop (hardware), then a
        // burst of Lustre errors.
        let mut c = EventCoalescer::new(SimDuration::from_secs(60));
        c.ingest(RawEvent {
            at: at(100),
            component: "ssu-03/enclosure-2".into(),
            class: EventClass::Hardware,
            detail: "SAS path lost".into(),
        });
        for i in 0..5 {
            c.ingest(RawEvent {
                at: at(110 + i),
                component: format!("oss-{i:03}"),
                class: EventClass::LustreSoftware,
                detail: "ost_write timeout".into(),
            });
        }
        // A separate, software-only incident much later.
        c.ingest(RawEvent {
            at: at(10_000),
            component: "mds-0".into(),
            class: EventClass::LustreSoftware,
            detail: "client eviction storm".into(),
        });
        let incidents = c.finish();
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].events.len(), 6);
        assert!(incidents[0].has_hardware_cause, "root cause visible");
        assert!(!incidents[1].has_hardware_cause, "pure software issue");
    }

    fn raw(at_s: u64, class: EventClass) -> RawEvent {
        RawEvent {
            at: at(at_s),
            component: "oss-000".into(),
            class,
            detail: "event".into(),
        }
    }

    #[test]
    fn coalescer_window_edge_joins_but_beyond_splits() {
        // The association window is inclusive: an event exactly `window`
        // after the incident's last event still joins; one nanosecond past
        // it opens a new incident.
        let mut c = EventCoalescer::new(SimDuration::from_secs(60));
        c.ingest(raw(100, EventClass::LustreSoftware));
        c.ingest(raw(160, EventClass::LustreSoftware)); // exactly at the edge
        let mut past = raw(160, EventClass::LustreSoftware);
        past.at = at(220) + SimDuration::from_nanos(1); // one ns beyond
        c.ingest(past);
        let incidents = c.finish();
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].events.len(), 2);
        assert_eq!(incidents[0].end, at(160));
        assert_eq!(incidents[1].events.len(), 1);
    }

    #[test]
    fn coalescer_absorbs_out_of_order_without_regressing_span() {
        // A late-arriving event stamped before the incident's current end
        // is absorbed, and the incident span stays [min, max] of its
        // events' times — the stale timestamp must not shrink `end` (which
        // would wrongly extend the window for later events).
        let mut c = EventCoalescer::new(SimDuration::from_secs(60));
        c.ingest(raw(100, EventClass::LustreSoftware));
        c.ingest(raw(150, EventClass::Hardware));
        c.ingest(raw(120, EventClass::LustreSoftware)); // out of order
                                                        // 211 is within 60 s of the true end (150) and must still join.
        c.ingest(raw(211 - 1, EventClass::LustreSoftware));
        let incidents = c.finish();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].start, at(100));
        assert_eq!(incidents[0].end, at(210));
        assert_eq!(incidents[0].events.len(), 4);
        assert!(incidents[0].has_hardware_cause);
    }

    #[test]
    fn coalescer_empty_finish_yields_no_incidents() {
        let c = EventCoalescer::new(SimDuration::from_secs(60));
        assert!(c.finish().is_empty());
    }

    #[test]
    fn poll_store_queries() {
        let mut store = PollStore::new();
        for t in 0..10u64 {
            store.record("sfa-00", "write_bw", at(t), 100.0 + t as f64);
            store.record("sfa-01", "write_bw", at(t), 500.0);
        }
        let mean = store.mean_over("sfa-00", "write_bw", at(0), at(4));
        assert!((mean - 102.0).abs() < 1e-9);
        let top = store.top_n_latest("write_bw", 1);
        assert_eq!(top, vec![("sfa-01".to_owned(), 500.0)]);
        assert_eq!(store.series("sfa-00", "write_bw").len(), 10);
        assert!(store.series("sfa-77", "write_bw").is_empty());
        assert_eq!(store.mean_over("sfa-77", "write_bw", at(0), at(9)), 0.0);
    }
}
