//! Fixture: idiomatic clean library code — zero findings expected.

use std::collections::BTreeMap;

pub fn ordered(m: &BTreeMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn safe(x: Option<u32>) -> u32 {
    x.expect("caller guarantees Some")
}

pub fn range_not_float(n: usize) -> usize {
    (0..n).sum()
}

pub fn sequential_float_fold(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |a, b| a + b)
}
