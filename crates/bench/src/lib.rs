//! # spider-bench
//!
//! The reproduction harness:
//!
//! - the [`figures`](../src/bin/figures.rs) binary regenerates **every**
//!   table and figure of the paper's evaluation (experiments E1–E15 from
//!   `spider-core::experiments`) and optionally dumps them as JSON;
//! - the Criterion benches under `benches/` time each experiment and the
//!   load-bearing substrate components (DES engine, max-min solver,
//!   namespace, parallel tools), including the ablations called out in
//!   `DESIGN.md`.
//!
//! Run `cargo run -p spider-bench --release --bin figures` for the full
//! paper-scale reproduction, or `-- --scale small` for a quick pass.

use spider_core::config::Scale;
use spider_core::experiments::registry;
use spider_core::report::Table;

/// Run one experiment's driver, charging its wall time to an `exp:<id>`
/// phase in the obs manifest (a no-op when observability is off).
fn run_timed(e: &spider_core::experiments::ExperimentEntry, scale: Scale) -> Vec<Table> {
    let _t = spider_obs::PhaseTimer::start(&format!("exp:{}", e.id));
    (e.run)(scale)
}

/// Run one experiment by id ("E1".."E15"). Returns `None` for unknown ids.
pub fn run_experiment(id: &str, scale: Scale) -> Option<Vec<Table>> {
    registry()
        .into_iter()
        .find(|e| e.id.eq_ignore_ascii_case(id))
        .map(|e| run_timed(&e, scale))
}

/// Run every experiment, returning `(id, paper_ref, tables)` triples.
pub fn run_all(scale: Scale) -> Vec<(String, String, Vec<Table>)> {
    registry()
        .into_iter()
        .map(|e| {
            let tables = run_timed(&e, scale);
            (e.id.to_owned(), e.paper_ref.to_owned(), tables)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_experiment_runs_at_small_scale() {
        for (id, _, tables) in run_all(Scale::Small) {
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.is_empty(), "{id} produced an empty table: {}", t.title);
            }
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("E99", Scale::Small).is_none());
        assert!(run_experiment("e5", Scale::Small).is_some());
    }
}
