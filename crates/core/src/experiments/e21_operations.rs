//! E21 — operations console: live detectors over replayed incidents
//! (extension).
//!
//! The paper's operational playbook is reactive telemetry: DDNTool polls
//! every controller couplet, operators watch for congestion (Fig 2 /
//! LL14), rebuild imbalance (§IV-E), and slow-disk outliers (§V-A /
//! LL13). This driver replays two of the repo's incident models with the
//! `spider-obs` live layer attached and checks the console *would have
//! seen them coming*, at exact simulated times:
//!
//! * **E21a** — the 2010 human-error sequence of E11 on the Spider I
//!   wiring, polled every 10 minutes. The rebuild concentrates I/O on
//!   group 3 (imbalance alarm at the first poll) and saturates the
//!   failed-over controller path (hot-spot alarm once the utilization has
//!   been high for three consecutive polls). Eighteen hours later the
//!   enclosure is pulled and the group dies — with the alarms already
//!   17+ hours old on the console.
//! * **E21b** — an E4-style as-delivered fleet, polled per disk once a
//!   minute. The slow-outlier detector (window-mean z-score) flags the
//!   worst of the ~9% slow tail as soon as every series has `min_count`
//!   samples; every flagged unit must be genuinely slow (speed factor
//!   below 0.92), mirroring the measure-bin-replace campaign trigger.
//!
//! Detection runs on a locally driven [`Monitor`] so the verdicts are
//! part of the experiment (and its tests) whether or not obs is on; with
//! `--obs` the monitor is absorbed into the global live layer so the run
//! also emits `alarms.jsonl` and `flight.jsonl`.

use spider_obs::{DetectorSpec, LiveConfig, Monitor};
use spider_simkit::{SimDuration, SimRng, MIB};
use spider_storage::disk::DiskPopulationSpec;
use spider_storage::enclosure::{EnclosureId, EnclosureLayout, EnclosureSet};
use spider_storage::fleet::{FleetSpec, StorageFleet};
use spider_storage::raid::{RaidConfig, RaidGroup, RaidGroupId, RaidState};

use crate::config::Scale;
use crate::report::Table;

/// E21a poll cadence: 10 simulated minutes.
const INCIDENT_POLL: u64 = 600_000_000_000;
/// E21b poll cadence: 1 simulated minute (the DDNTool shape).
const FLEET_POLL: u64 = 60_000_000_000;
/// Ground-truth bar for "genuinely slow" in E21b.
const SLOW_BAR: f64 = 0.92;

/// Outcome of the E21a replay.
struct IncidentConsole {
    monitor: Monitor,
    groups_failed: usize,
    polls_before_offline: u64,
}

/// Replay the E11 sequence on the Spider I wiring while a console
/// monitor watches synthesized per-poll telemetry derived from the model
/// state: per-group busy fraction (rebuild concentrates I/O) and the
/// utilization of the failed-over controller path.
fn incident_console(groups_per_pair: usize, seed: u64) -> IncidentConsole {
    let mut rng = SimRng::seed_from_u64(seed);
    let pop = DiskPopulationSpec::default();
    let cfg = RaidConfig::raid6_8p2();
    let mut groups: Vec<RaidGroup> = (0..groups_per_pair as u32)
        .map(|g| RaidGroup::sample(RaidGroupId(g), cfg, &pop, g * 10, &mut rng))
        .collect();
    let mut enclosures = EnclosureSet::new(EnclosureLayout::spider1());

    let mut monitor = Monitor::new(LiveConfig {
        cadence_ns: INCIDENT_POLL,
        window: 6,
        detectors: vec![
            DetectorSpec::Imbalance {
                metric: "group_busy_pct".to_owned(),
                ratio: 2.0,
                min_labels: 8,
            },
            DetectorSpec::HotSpot {
                metric: "path_util".to_owned(),
                threshold: 0.9,
                sustain: 3,
            },
        ],
        ..LiveConfig::default()
    });

    // t = 0: the replaced disk's group starts rebuilding; the controller
    // path has failed over and carries rebuild + production traffic.
    groups[3].fail_member(2);
    groups[3].start_rebuild(&pop, &mut rng);

    let mut offline = false;
    let poll = SimDuration::from_nanos(INCIDENT_POLL);
    let horizon_polls = SimDuration::from_hours(20).as_nanos() / INCIDENT_POLL;
    let offline_poll = SimDuration::from_hours(18).as_nanos() / INCIDENT_POLL;
    let mut polls_before_offline = 0;
    for k in 1..=horizon_polls {
        if !offline {
            groups[3].advance_rebuild(poll);
        }
        let rebuilding = groups
            .iter()
            .any(|g| matches!(g.state(), RaidState::Rebuilding(_)));
        let util = if offline {
            0.0
        } else if rebuilding {
            0.93
        } else {
            0.55
        };
        monitor.sample("path_util", "enclosure0", util);
        for g in &groups {
            let busy = match g.state() {
                RaidState::Rebuilding(_) => 95.0,
                RaidState::Failed => 0.0,
                _ => 10.0,
            };
            monitor.sample("group_busy_pct", &format!("g{:03}", g.id.0), busy);
        }
        monitor.tick(k * INCIDENT_POLL);
        if k == offline_poll {
            // Eighteen hours in, the enclosure is pulled mid-rebuild —
            // the E11 blast radius on the 5-enclosure wiring.
            polls_before_offline = monitor.polls();
            assert!(
                matches!(groups[3].state(), RaidState::Rebuilding(_)),
                "rebuild must still be in flight after 18 h"
            );
            enclosures.take_offline(EnclosureId(0), &mut groups);
            offline = true;
        }
    }
    IncidentConsole {
        groups_failed: groups
            .iter()
            .filter(|g| g.state() == RaidState::Failed)
            .count(),
        polls_before_offline,
        monitor,
    }
}

/// Outcome of the E21b fleet sweep.
struct FleetConsole {
    monitor: Monitor,
    disks: usize,
    truly_slow: usize,
    flagged: Vec<(String, f64)>,
}

/// Poll an as-delivered fleet per disk and let the slow-outlier detector
/// pick the culling candidates; pair every flagged label with its ground
/// truth speed factor.
fn fleet_console(spec: FleetSpec, polls: u64, seed: u64) -> FleetConsole {
    let mut rng = SimRng::seed_from_u64(seed);
    let fleet = StorageFleet::sample(spec, &mut rng);
    let mut monitor = Monitor::new(LiveConfig {
        cadence_ns: FLEET_POLL,
        window: 8,
        detectors: vec![DetectorSpec::SlowOutlier {
            metric: "disk_service_ms".to_owned(),
            zmin: 2.0,
            min_count: 4,
        }],
        ..LiveConfig::default()
    });
    for k in 1..=polls {
        for g in fleet.groups() {
            for d in &g.members {
                if d.in_service() {
                    monitor.sample(
                        "disk_service_ms",
                        &format!("d{:05}", d.id.0),
                        d.service_time(MIB, true).as_secs_f64() * 1e3,
                    );
                }
            }
        }
        monitor.tick(k * FLEET_POLL);
        // With obs + live on, also feed the global layer (the DDNTool
        // path the instrumented experiments use).
        fleet.live_probe(MIB);
        spider_obs::live_tick(k * FLEET_POLL);
    }

    let mut factor_of = std::collections::BTreeMap::new();
    for g in fleet.groups() {
        for d in &g.members {
            factor_of.insert(format!("d{:05}", d.id.0), d.speed_factor());
        }
    }
    let flagged: Vec<(String, f64)> = monitor
        .alarms()
        .iter()
        .filter(|a| a.detector == "slow-outlier")
        .map(|a| (a.label.clone(), factor_of[&a.label]))
        .collect();
    FleetConsole {
        disks: factor_of.len(),
        truly_slow: factor_of.values().filter(|&&f| f < SLOW_BAR).count(),
        flagged,
        monitor,
    }
}

/// Run E21.
pub fn run(scale: Scale) -> Vec<Table> {
    let (groups_per_pair, fleet_ssus, fleet_polls) = match scale {
        Scale::Paper => (56usize, 4usize, 8u64),
        Scale::Small => (28, 2, 6),
    };

    let incident = incident_console(groups_per_pair, 0xE21);
    let mut a = Table::new(
        "E21a: incident replay — console alarms precede the enclosure loss",
        &[
            "detector",
            "metric",
            "label",
            "alarm at (min)",
            "value",
            "limit",
        ],
    );
    for alarm in incident.monitor.alarms() {
        a.row(vec![
            alarm.detector.to_owned(),
            alarm.metric.clone(),
            alarm.label.clone(),
            format!("{:.0}", alarm.t_ns as f64 / 60e9),
            format!("{:.2}", alarm.value),
            format!("{:.2}", alarm.limit),
        ]);
    }
    a.row(vec![
        "(outcome)".into(),
        "groups failed".into(),
        "-".into(),
        format!(
            "{:.0}",
            (incident.polls_before_offline * INCIDENT_POLL) as f64 / 60e9
        ),
        incident.groups_failed.to_string(),
        "0".into(),
    ]);

    let mut spec = FleetSpec::small_test();
    spec.ssus = fleet_ssus;
    let fleet = fleet_console(spec, fleet_polls, 0xE21);
    let first_alarm_min = fleet
        .monitor
        .alarms()
        .first()
        .map_or(0.0, |al| al.t_ns as f64 / 60e9);
    let worst = fleet
        .flagged
        .iter()
        .map(|&(_, f)| f)
        .fold(f64::INFINITY, f64::min);
    let mut b = Table::new(
        "E21b: slow-disk fleet — outlier detector vs ground truth (LL13)",
        &["statistic", "value"],
    );
    b.row(vec!["disks polled".into(), fleet.disks.to_string()]);
    b.row(vec![
        format!("truly slow (speed factor < {SLOW_BAR})"),
        fleet.truly_slow.to_string(),
    ]);
    b.row(vec![
        "flagged by slow-outlier (z >= 2)".into(),
        fleet.flagged.len().to_string(),
    ]);
    b.row(vec![
        "flagged that are truly slow".into(),
        fleet
            .flagged
            .iter()
            .filter(|&&(_, f)| f < SLOW_BAR)
            .count()
            .to_string(),
    ]);
    b.row(vec![
        "worst flagged speed factor".into(),
        if fleet.flagged.is_empty() {
            "-".into()
        } else {
            format!("{worst:.2}")
        },
    ]);
    b.row(vec![
        "first alarm at (min)".into(),
        format!("{first_alarm_min:.0}"),
    ]);
    b.row(vec![
        "flight-recorder dumps".into(),
        (incident.monitor.dump_count() + fleet.monitor.dump_count()).to_string(),
    ]);

    if spider_obs::enabled() {
        spider_obs::counter_add(
            "e21_alarms",
            (incident.monitor.alarms().len() + fleet.monitor.alarms().len()) as u64,
        );
        // Hand the locally driven monitors to the global live layer so a
        // `--obs` run writes their alarm log and flight dumps.
        spider_obs::live_absorb(incident.monitor);
        spider_obs::live_absorb(fleet.monitor);
    }
    super::trace::experiment("E21", 2, 2);
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e21_incident_alarms_fire_at_pinned_sim_times() {
        let inc = incident_console(28, 0xE21);
        let alarms = inc.monitor.alarms();
        assert_eq!(alarms.len(), 2, "{alarms:?}");
        // Imbalance at the very first poll: group 3's rebuild pins its
        // busy window mean at 95 vs ~13 across the pair.
        assert_eq!(alarms[0].detector, "imbalance");
        assert_eq!(alarms[0].label, "g003");
        assert_eq!(alarms[0].t_ns, INCIDENT_POLL);
        // Hot-spot after three sustained polls at 0.93 >= 0.9.
        assert_eq!(alarms[1].detector, "hotspot");
        assert_eq!(alarms[1].label, "enclosure0");
        assert_eq!(alarms[1].t_ns, 3 * INCIDENT_POLL);
        // Both verdicts are on the console long before the 18 h offline.
        assert!(inc.polls_before_offline >= 108);
        assert_eq!(inc.groups_failed, 1);
        assert_eq!(inc.monitor.dump_count(), 2);
    }

    #[test]
    fn e21_fleet_flags_only_truly_slow_disks() {
        let mut spec = FleetSpec::small_test();
        spec.ssus = 2;
        let fleet = fleet_console(spec, 6, 0xE21);
        assert!(!fleet.flagged.is_empty(), "the slow tail must be visible");
        for (label, factor) in &fleet.flagged {
            assert!(
                *factor < SLOW_BAR,
                "{label} flagged but speed factor {factor:.3}"
            );
        }
        assert!(fleet.flagged.len() <= fleet.truly_slow);
        // Every series reaches min_count at the fourth poll; all
        // slow-outlier alarms latch there.
        for a in fleet.monitor.alarms() {
            assert_eq!(a.t_ns, 4 * FLEET_POLL);
        }
    }

    #[test]
    fn e21_is_deterministic() {
        let a = run(Scale::Small);
        let b = run(Scale::Small);
        assert_eq!(a[0].rows, b[0].rows);
        assert_eq!(a[1].rows, b[1].rows);
    }
}
