//! Deep fixture: intermediate hop — forwards tainted data untouched, so
//! taint entering `assemble` propagates to its callers.

use crate::par::shard_sums;

/// Forwards the tainted shard sums without a barrier.
pub fn assemble(v: &[f64]) -> Vec<f64> {
    shard_sums(v)
}
