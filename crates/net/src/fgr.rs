//! Fine-grained routing (FGR) and its evaluation.
//!
//! §V-B: "At the most basic level, FGR uses multiple Lustre LNET Network
//! Interfaces (NIs) to expose physical or topological locality ... Clients
//! choose to use a topologically close router that uses the NI of the
//! desired destination." This module implements that client-side choice plus
//! two naive baselines, and scores each assignment by the congestion it
//! induces on the torus (experiment E1 / Figure 2 / Lesson Learned 14).

use spider_simkit::{OnlineStats, SimRng};

pub use crate::lnet::ModulePlacement as PlacementScheme;

use crate::gemini::TitanGeometry;
use crate::ib::IbFabric;
use crate::lnet::{RouterGroupId, RouterId, RouterSet};
use crate::torus::{Coord, LinkLoads};

/// How clients are bound to routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentPolicy {
    /// Fine-grained routing: nearest router within the destination group.
    Fgr,
    /// Uniformly random router (destination group ignored; LNET will still
    /// deliver, at the cost of extra IB hops).
    RandomRouter,
    /// Client index modulo router count — the "configuration file default".
    RoundRobin,
}

/// A client-to-router binding.
#[derive(Debug, Clone)]
pub struct FgrAssignment {
    /// Policy that produced it.
    pub policy: AssignmentPolicy,
    /// Chosen router per client (parallel to the client slice).
    pub choices: Vec<RouterId>,
}

/// Congestion metrics for an assignment.
#[derive(Debug, Clone)]
pub struct CongestionReport {
    /// Highest per-link utilization (load / link capacity).
    pub max_utilization: f64,
    /// Mean utilization over loaded links.
    pub mean_utilization: f64,
    /// Jain fairness over loaded links (1.0 = even).
    pub fairness: f64,
    /// Mean client-to-router hop count.
    pub avg_hops: f64,
    /// Worst client-to-router hop count.
    pub max_hops: u32,
    /// Links carrying traffic.
    pub loaded_links: usize,
    /// Fraction of client traffic that lands on the correct IB leaf for its
    /// destination group (1.0 for FGR by construction).
    pub leaf_affinity: f64,
    /// Utilization of the IB core: traffic that missed its destination leaf
    /// must cross the core switches to reach the Lustre servers. Keeping
    /// this near zero is why FGR exists — SION's "decentralized InfiniBand
    /// fabric" cannot carry the full storage load through its core.
    pub core_utilization: f64,
}

/// Bind every client to a router under `policy`.
///
/// `clients` pairs each client's torus coordinate with the router group of
/// its I/O destination (the SSU its target OST lives in).
pub fn assign(
    policy: AssignmentPolicy,
    geometry: &TitanGeometry,
    routers: &RouterSet,
    clients: &[(Coord, RouterGroupId)],
    rng: &mut SimRng,
) -> FgrAssignment {
    assert!(!routers.is_empty(), "no routers to assign to");
    let choices = clients
        .iter()
        .enumerate()
        .map(|(i, &(coord, group))| match policy {
            AssignmentPolicy::Fgr => {
                routers
                    .nearest_in_group(geometry, coord, group)
                    .unwrap_or_else(|| routers.nearest_any(geometry, coord).expect("non-empty"))
                    .id
            }
            AssignmentPolicy::RandomRouter => routers.routers[rng.index(routers.len())].id,
            AssignmentPolicy::RoundRobin => routers.routers[i % routers.len()].id,
        })
        .collect();
    FgrAssignment { policy, choices }
}

/// Score an assignment: route each client's traffic (`per_client_load`
/// bytes/s) to its router over the torus, account the IB-side leaf/core
/// crossings, and report congestion.
pub fn evaluate(
    geometry: &TitanGeometry,
    fabric: &IbFabric,
    routers: &RouterSet,
    clients: &[(Coord, RouterGroupId)],
    assignment: &FgrAssignment,
    per_client_load: f64,
) -> CongestionReport {
    assert_eq!(clients.len(), assignment.choices.len());
    let torus = &geometry.torus;
    let mut loads = LinkLoads::new(torus);
    let mut hops = OnlineStats::new();
    let mut max_hops = 0u32;
    let mut on_leaf = 0usize;
    let mut core_traffic = 0.0f64;

    // Router lookup by id. BTreeMap, not HashMap: lookup maps in the
    // simulation path stay ordered so no future `.iter()` can leak
    // process-seeded order into a report.
    let by_id: std::collections::BTreeMap<RouterId, &crate::lnet::Router> =
        routers.routers.iter().map(|r| (r.id, r)).collect();

    for (&(coord, group), rid) in clients.iter().zip(&assignment.choices) {
        let router = by_id[rid];
        loads.add_route(torus, coord, router.coord, per_client_load);
        let h = torus.distance(coord, router.coord);
        hops.push(h as f64);
        max_hops = max_hops.max(h);
        // Correct leaf iff the chosen router belongs to the destination
        // group (its leaf serves that SSU); otherwise the traffic crosses
        // the IB core to reach the destination's servers.
        if router.group == group {
            on_leaf += 1;
        } else {
            core_traffic += per_client_load;
        }
    }

    // Utilization: normalize each link's load by its dimension capacity.
    let mut max_util = 0.0f64;
    let mut util_sum = 0.0f64;
    let mut util_n = 0usize;
    for (link, load) in loads.hotspots(usize::MAX) {
        let cap = geometry.link_capacity(link).as_bytes_per_sec();
        let u = load / cap;
        max_util = max_util.max(u);
        util_sum += u;
        util_n += 1;
    }

    CongestionReport {
        max_utilization: max_util,
        mean_utilization: if util_n == 0 {
            0.0
        } else {
            util_sum / util_n as f64
        },
        fairness: loads.fairness(),
        avg_hops: hops.mean(),
        max_hops,
        loaded_links: util_n,
        leaf_affinity: if clients.is_empty() {
            1.0
        } else {
            on_leaf as f64 / clients.len() as f64
        },
        core_utilization: core_traffic / fabric.core_capacity.as_bytes_per_sec(),
    }
}

/// Render the Figure 2 floor map: a `rows x cols` character grid where each
/// cabinet shows the router-group letter of the I/O module(s) it contains
/// (`.` for compute-only cabinets). Cabinets hosting modules from several
/// groups show the lowest group letter.
pub fn floor_map(geometry: &TitanGeometry, routers: &RouterSet) -> String {
    let (cols, rows) = geometry.cabinets();
    let mut grid = vec![vec![None::<u32>; cols as usize]; rows as usize];
    for r in &routers.routers {
        let (col, row) = geometry.cabinet_of(r.coord);
        let cell = &mut grid[row as usize][col as usize];
        *cell = Some(cell.map_or(r.group.0, |g| g.min(r.group.0)));
    }
    let mut out = String::new();
    for row in grid.iter().rev() {
        for cell in row {
            out.push(match cell {
                Some(g) => char::from(b'A' + (g % 26) as u8),
                None => '.',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lnet::ModulePlacement;
    use spider_simkit::Bandwidth;

    fn setup(seed: u64) -> (TitanGeometry, RouterSet, Vec<(Coord, RouterGroupId)>) {
        let g = TitanGeometry::titan();
        let mut rng = SimRng::seed_from_u64(seed);
        let routers = RouterSet::titan_production(&g, ModulePlacement::SpreadBands, &mut rng);
        // 2,000 clients spread over the machine, destinations striped over
        // the 36 groups.
        let clients: Vec<(Coord, RouterGroupId)> = (0..2_000)
            .map(|i| {
                let c = g.torus.coord_of(rng.index(g.torus.nodes()));
                (c, RouterGroupId(i % 36))
            })
            .collect();
        (g, routers, clients)
    }

    #[test]
    fn fgr_beats_random_and_round_robin_on_hops() {
        let (g, routers, clients) = setup(5);
        let mut rng = SimRng::seed_from_u64(2);
        let load = 50e6;
        let fgr = assign(AssignmentPolicy::Fgr, &g, &routers, &clients, &mut rng);
        let rnd = assign(
            AssignmentPolicy::RandomRouter,
            &g,
            &routers,
            &clients,
            &mut rng,
        );
        let rr = assign(
            AssignmentPolicy::RoundRobin,
            &g,
            &routers,
            &clients,
            &mut rng,
        );
        let rep_fgr = evaluate(&g, &IbFabric::sion(), &routers, &clients, &fgr, load);
        let rep_rnd = evaluate(&g, &IbFabric::sion(), &routers, &clients, &rnd, load);
        let rep_rr = evaluate(&g, &IbFabric::sion(), &routers, &clients, &rr, load);
        // FGR restricts choices to the ~12 routers of the destination group,
        // so it cannot match nearest-any distances — but it still clearly
        // beats group-oblivious policies on path length.
        assert!(
            rep_fgr.avg_hops < 0.8 * rep_rnd.avg_hops,
            "FGR {} vs random {}",
            rep_fgr.avg_hops,
            rep_rnd.avg_hops
        );
        assert!(rep_fgr.avg_hops < 0.8 * rep_rr.avg_hops);
        // And on hotspot severity.
        assert!(rep_fgr.max_utilization < rep_rnd.max_utilization);
        // Leaf affinity is perfect for FGR, ~1/36 for random.
        assert_eq!(rep_fgr.leaf_affinity, 1.0);
        assert!(rep_rnd.leaf_affinity < 0.1);
        // The decisive metric: FGR keeps the IB core idle; group-oblivious
        // policies shove nearly all storage traffic through it.
        assert_eq!(rep_fgr.core_utilization, 0.0);
        assert!(rep_rnd.core_utilization > 50.0 * (rep_fgr.core_utilization + 1e-12));
        assert!(rep_rr.core_utilization > 0.1);
    }

    #[test]
    fn congested_corner_placement_hurts() {
        let g = TitanGeometry::titan();
        let mut rng = SimRng::seed_from_u64(3);
        let packed = RouterSet::titan_production(&g, ModulePlacement::Packed, &mut rng);
        let spread = RouterSet::titan_production(&g, ModulePlacement::SpreadBands, &mut rng);
        let clients: Vec<(Coord, RouterGroupId)> = (0..2_000u32)
            .map(|i| {
                let c = g.torus.coord_of(rng.index(g.torus.nodes()));
                (c, RouterGroupId(i % 36))
            })
            .collect();
        let load = 50e6;
        let a_packed = assign(AssignmentPolicy::Fgr, &g, &packed, &clients, &mut rng);
        let a_spread = assign(AssignmentPolicy::Fgr, &g, &spread, &clients, &mut rng);
        let r_packed = evaluate(&g, &IbFabric::sion(), &packed, &clients, &a_packed, load);
        let r_spread = evaluate(&g, &IbFabric::sion(), &spread, &clients, &a_spread, load);
        // Packing every module in one corner concentrates traffic: worse
        // hotspots and longer paths even with FGR's best effort.
        assert!(
            r_packed.max_utilization > 1.5 * r_spread.max_utilization,
            "packed {} vs spread {}",
            r_packed.max_utilization,
            r_spread.max_utilization
        );
        assert!(r_packed.avg_hops > r_spread.avg_hops);
    }

    #[test]
    fn report_fields_are_consistent() {
        let (g, routers, clients) = setup(4);
        let mut rng = SimRng::seed_from_u64(5);
        let a = assign(AssignmentPolicy::Fgr, &g, &routers, &clients, &mut rng);
        let rep = evaluate(&g, &IbFabric::sion(), &routers, &clients, &a, 1.0);
        assert!(rep.max_utilization >= rep.mean_utilization);
        assert!(rep.max_hops as f64 >= rep.avg_hops);
        assert!(rep.fairness > 0.0 && rep.fairness <= 1.0);
        assert!(rep.loaded_links > 0);
    }

    #[test]
    fn zero_clients_is_benign() {
        let (g, routers, _) = setup(6);
        let mut rng = SimRng::seed_from_u64(7);
        let a = assign(AssignmentPolicy::Fgr, &g, &routers, &[], &mut rng);
        let rep = evaluate(&g, &IbFabric::sion(), &routers, &[], &a, 1.0);
        assert_eq!(rep.loaded_links, 0);
        assert_eq!(rep.leaf_affinity, 1.0);
    }

    #[test]
    fn floor_map_has_expected_shape() {
        let g = TitanGeometry::titan();
        let mut rng = SimRng::seed_from_u64(8);
        let routers = RouterSet::titan_production(&g, ModulePlacement::SpreadBands, &mut rng);
        let map = floor_map(&g, &routers);
        let lines: Vec<&str> = map.trim_end().split('\n').collect();
        assert_eq!(lines.len(), 8, "8 cabinet rows");
        assert!(lines.iter().all(|l| l.len() == 25), "25 cabinet columns");
        // Both I/O cabinets and compute-only cabinets appear.
        assert!(map.contains('.'));
        assert!(map.chars().any(|c| c.is_ascii_uppercase()));
    }

    #[test]
    fn fgr_falls_back_when_group_unknown() {
        let g = TitanGeometry::small_test();
        let mut rng = SimRng::seed_from_u64(9);
        let routers = RouterSet::place(
            &g,
            ModulePlacement::SpreadBands,
            2,
            2,
            8,
            Bandwidth::gb_per_sec(2.8),
            &mut rng,
        );
        let clients = vec![(Coord::new(0, 0, 0), RouterGroupId(77))];
        let a = assign(AssignmentPolicy::Fgr, &g, &routers, &clients, &mut rng);
        assert_eq!(a.choices.len(), 1, "fallback to nearest-any router");
    }
}
