//! E19 — §I/§II: eliminating data islands (extension).
//!
//! The paper's founding motivation, quantified: a simulation → analysis
//! workflow under the machine-exclusive model (private file systems joined
//! by a data-movement cluster) versus the data-centric shared namespace,
//! across dataset sizes — including the contention tax the shared model
//! pays (its read rate is derated) and still wins.

use spider_simkit::{Bandwidth, MIB, TB};
use spider_workload::ior::{run_ior, IorConfig};

use crate::center::Center;
use crate::config::{CenterConfig, Scale};
use crate::datamove::{
    time_to_science_exclusive, time_to_science_shared, ExclusiveArchitecture, Workflow,
};
use crate::flowsim::CenterTarget;
use crate::report::Table;

/// Run E19.
pub fn run(_scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E19: time from 'simulation done' to 'analysis done' (3 passes)",
        &[
            "dataset",
            "exclusive: move+analyze",
            "shared: analyze in place",
            "shared advantage",
        ],
    );
    let arch = ExclusiveArchitecture::default();
    for dataset_tb in [5u64, 20, 50, 150] {
        let w = Workflow {
            dataset: dataset_tb * TB,
            analysis_read: Bandwidth::gb_per_sec(60.0),
            analysis_passes: 3,
        };
        let exclusive = time_to_science_exclusive(&w, &arch);
        // Shared namespace: same analysis hardware but contended (half rate).
        let shared = time_to_science_shared(&w, Bandwidth::gb_per_sec(30.0));
        t.row(vec![
            format!("{dataset_tb} TB"),
            format!("{:.1} h", exclusive.as_secs_f64() / 3600.0),
            format!("{:.1} h", shared.as_secs_f64() / 3600.0),
            format!("{:.2}x", exclusive.as_secs_f64() / shared.as_secs_f64()),
        ]);
    }
    super::trace::experiment("E19", 1, 1);
    vec![t]
}

/// Per-center shape of the federated extension sweep: (dataset TB, clients).
pub fn federated_centers() -> Vec<(u64, u32)> {
    vec![(50, 100_000), (150, 120_000), (300, 150_000)]
}

/// E19 extension: the data-islands comparison at federated scale — three
/// data-centric centers, each serving >= 100,000 clients. Unlike [`run`],
/// which assumes an analysis rate, each center's in-place rate here is
/// *measured*: a class-level IOR solve at the center's full client count
/// (feasible only because the columnar path keeps 10^5-client solves at
/// class-level cost), derated by half for contention as in the base table.
/// Separate from [`run`] so the paper-shape E19 table is untouched.
pub fn run_federated() -> Vec<Table> {
    let mut t = Table::new(
        "E19x (extension): federated 3-center simulation->analysis hand-off (3 passes)",
        &[
            "center",
            "clients",
            "measured GB/s",
            "exclusive: move+analyze",
            "shared: analyze in place",
            "shared advantage",
        ],
    );
    let arch = ExclusiveArchitecture::default();
    for (i, (dataset_tb, clients)) in federated_centers().into_iter().enumerate() {
        let center = Center::build(CenterConfig::at_scale(Scale::Paper));
        let target = CenterTarget {
            center: &center,
            fs: 0,
        };
        let mut cfg = IorConfig::paper_scaling(clients, MIB);
        cfg.iterations = 1;
        let measured = run_ior(&target, &cfg).mean;
        let w = Workflow {
            dataset: dataset_tb * TB,
            analysis_read: measured,
            analysis_passes: 3,
        };
        let exclusive = time_to_science_exclusive(&w, &arch);
        let shared = time_to_science_shared(&w, measured / 2.0);
        t.row(vec![
            format!("center-{i}"),
            clients.to_string(),
            format!("{:.1}", measured.as_gb_per_sec()),
            format!("{:.1} h", exclusive.as_secs_f64() / 3600.0),
            format!("{:.1} h", shared.as_secs_f64() / 3600.0),
            format!("{:.2}x", exclusive.as_secs_f64() / shared.as_secs_f64()),
        ]);
    }
    super::trace::experiment("E19", federated_centers().len(), 1);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_shared_wins_at_every_size() {
        let t = &run(Scale::Small)[0];
        for row in &t.rows {
            let adv: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(adv > 1.0, "{row:?}");
        }
    }

    #[test]
    fn e19_federated_centers_win_in_place_at_scale() {
        let t = &run_federated()[0];
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let clients: u32 = row[1].parse().unwrap();
            assert!(clients >= 100_000, "{row:?}");
            // Measured plateau rate, not an assumed constant.
            let gbps: f64 = row[2].parse().unwrap();
            assert!((280.0..=340.0).contains(&gbps), "{row:?}");
            let adv: f64 = row[5].trim_end_matches('x').parse().unwrap();
            assert!(adv > 1.0, "{row:?}");
        }
    }

    #[test]
    fn e19_advantage_is_material_for_small_datasets_too() {
        // Fixed transfer setup hits small datasets hardest: even a 5 TB
        // hand-off loses badly to reading in place.
        let t = &run(Scale::Small)[0];
        let adv_small: f64 = t.rows[0][3].trim_end_matches('x').parse().unwrap();
        assert!(adv_small > 1.5, "{adv_small}");
    }
}
