//! E17 — §VI-B / LL18: I/O-aware scheduling from IOSI signatures.
//!
//! End to end: several periodic applications run against background noise;
//! IOSI recovers each one's signature from the server-side logs alone; the
//! scheduler de-phases their start offsets; the peak aggregate bandwidth
//! demand on the namespace drops accordingly — "smart I/O-aware tools ...
//! for load balancing, resource allocation, and scheduling".

use spider_simkit::{SimDuration, SimRng, TimeSeries};
use spider_tools::iosi::{extract_signature, IoSignature, IosiConfig};
use spider_tools::scheduler::{dephasing_gain, SchedulerConfig};
use spider_workload::generator::trace_to_series;
use spider_workload::s3d::S3dConfig;

use crate::config::Scale;
use crate::report::{pct, Table};

/// Recover one app's signature from noisy multi-run logs.
fn recover(app: &S3dConfig, interval: SimDuration, seed: u64) -> Option<IoSignature> {
    let runs: Vec<TimeSeries> = (0..3)
        .map(|i| {
            let mut rng = SimRng::seed_from_u64(seed + i);
            let mut log = trace_to_series(&app.trace(&mut rng), interval);
            // Light uncorrelated noise.
            for bin in 0..(app.runtime.as_nanos() / interval.as_nanos()) {
                log.add(
                    spider_simkit::SimTime(bin * interval.as_nanos()),
                    rng.f64() * 2e8,
                );
            }
            log
        })
        .collect();
    extract_signature(&runs, &IosiConfig::default())
}

/// Run E17.
pub fn run(scale: Scale) -> Vec<Table> {
    let rank_base = match scale {
        Scale::Paper => 8_192,
        Scale::Small => 2_048,
    };
    let interval = SimDuration::from_secs(10);
    // Three apps with distinct periods and sizes.
    let apps = [
        S3dConfig {
            output_period: SimDuration::from_mins(10),
            ..S3dConfig::small(rank_base)
        },
        S3dConfig {
            output_period: SimDuration::from_mins(15),
            ..S3dConfig::small(rank_base / 2)
        },
        S3dConfig {
            output_period: SimDuration::from_mins(20),
            ..S3dConfig::small(rank_base * 2)
        },
    ];

    let mut sig_table = Table::new(
        "E17a: recovered signatures feeding the scheduler",
        &[
            "app",
            "true period (s)",
            "recovered period (s)",
            "recovered burst (GiB)",
        ],
    );
    let mut sigs = Vec::new();
    for (i, app) in apps.iter().enumerate() {
        let sig = recover(app, interval, 0xE17 + 10 * i as u64).expect("signature");
        sig_table.row(vec![
            format!("app{i}"),
            format!("{:.0}", app.output_period.as_secs_f64()),
            format!("{:.0}", sig.period.as_secs_f64()),
            format!("{:.1}", sig.burst_volume / (1u64 << 30) as f64),
        ]);
        sigs.push(sig);
    }

    let cfg = SchedulerConfig::default();
    let (naive, scheduled) = dephasing_gain(&sigs, &cfg);
    let mut sched_table = Table::new(
        "E17b: peak aggregate demand, naive co-start vs IOSI-driven de-phasing",
        &["schedule", "peak demand (GiB per 10 s)", "vs naive"],
    );
    sched_table.row(vec![
        "all apps start together".into(),
        format!("{:.1}", naive / (1u64 << 30) as f64),
        "100.0%".into(),
    ]);
    sched_table.row(vec![
        "IOSI-signature de-phasing".into(),
        format!("{:.1}", scheduled / (1u64 << 30) as f64),
        pct(scheduled / naive),
    ]);
    super::trace::experiment("E17", 1, 2);
    vec![sig_table, sched_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_signatures_are_recovered_for_all_apps() {
        let tables = run(Scale::Small);
        assert_eq!(tables[0].len(), 3);
        for row in &tables[0].rows {
            let truth: f64 = row[1].parse().unwrap();
            let got: f64 = row[2].parse().unwrap();
            assert!((got - truth).abs() / truth < 0.15, "{row:?}");
        }
    }

    #[test]
    fn e17_dephasing_cuts_the_peak_materially() {
        let tables = run(Scale::Small);
        let vs_naive: f64 = tables[1].rows[1][2].trim_end_matches('%').parse().unwrap();
        assert!(vs_naive < 75.0, "scheduled peak at {vs_naive}% of naive");
        assert!(vs_naive > 20.0, "cannot beat the largest single burst");
    }
}
