//! Assembling the whole center.

use spider_net::gemini::TitanGeometry;
use spider_net::ib::IbFabric;
use spider_net::lnet::RouterSet;
use spider_pfs::fs::{FileSystem, FsConfig};
use spider_pfs::mds::MdsCluster;
use spider_pfs::ost::OstId;
use spider_simkit::{Bandwidth, SimRng};
use spider_storage::controller::ControllerPair;
use spider_storage::fleet::StorageFleet;

use crate::config::CenterConfig;

/// The assembled center: Titan, the router plant, SION, and the Spider II
/// namespaces over the storage floor.
#[derive(Debug)]
pub struct Center {
    /// Build configuration.
    pub config: CenterConfig,
    /// Titan's network geometry.
    pub geometry: TitanGeometry,
    /// LNET routers.
    pub routers: RouterSet,
    /// The SION InfiniBand fabric.
    pub fabric: IbFabric,
    /// File system namespaces (Spider II: `atlas1`, `atlas2`).
    pub filesystems: Vec<FileSystem>,
    /// Controller couplets, indexed by global SSU.
    pub controllers: Vec<ControllerPair>,
    /// Global SSU index of each OST, per namespace.
    pub ssu_of_ost: Vec<Vec<usize>>,
    /// Router indices by FGR group, built once at assembly so hot paths
    /// never rescan the router plant (`routers_of_group`).
    router_groups: Vec<Vec<usize>>,
}

impl Center {
    /// Build deterministically from a configuration.
    pub fn build(config: CenterConfig) -> Center {
        let mut rng = SimRng::seed_from_u64(config.seed);
        let geometry = if config.io_modules >= 64 {
            TitanGeometry::titan()
        } else {
            TitanGeometry::small_test()
        };
        let fabric = if config.router_groups >= 36 {
            IbFabric::sion()
        } else {
            IbFabric {
                leaves: config.router_groups * 4,
                ..IbFabric::small_test()
            }
        };
        let routers = RouterSet::place(
            &geometry,
            config.placement,
            config.io_modules,
            config.router_groups,
            fabric.leaves,
            Bandwidth::gb_per_sec(2.8),
            &mut rng,
        );

        // Sample the floor, then split SSUs into contiguous namespace
        // blocks (Spider II: atlas1 = SSUs 0..18, atlas2 = 18..36).
        let fleet = StorageFleet::sample(config.fleet.clone(), &mut rng);
        let per_ns = config.ssus_per_namespace();
        assert!(per_ns >= 1, "more namespaces than SSUs");
        let mut controllers = Vec::with_capacity(fleet.ssus.len());
        let mut ns_groups: Vec<Vec<spider_storage::raid::RaidGroup>> =
            (0..config.namespaces).map(|_| Vec::new()).collect();
        let mut ssu_of_ost: Vec<Vec<usize>> = (0..config.namespaces).map(|_| Vec::new()).collect();
        for (i, ssu) in fleet.ssus.into_iter().enumerate() {
            controllers.push(ssu.controller.clone());
            let ns = (i / per_ns).min(config.namespaces - 1);
            for g in ssu.groups {
                ns_groups[ns].push(g);
                ssu_of_ost[ns].push(i);
            }
        }
        let filesystems = ns_groups
            .into_iter()
            .enumerate()
            .map(|(i, groups)| {
                let mut fsc = FsConfig::spider2(&format!("atlas{}", i + 1));
                fsc.n_oss = config.oss_per_namespace;
                FileSystem::build(fsc, groups, MdsCluster::single())
            })
            .collect();

        let mut router_groups: Vec<Vec<usize>> = vec![Vec::new(); routers.groups.max(1) as usize];
        for (idx, r) in routers.routers.iter().enumerate() {
            let g = r.group.0 as usize;
            if g >= router_groups.len() {
                router_groups.resize(g + 1, Vec::new());
            }
            router_groups[g].push(idx);
        }

        Center {
            config,
            geometry,
            routers,
            fabric,
            filesystems,
            controllers,
            ssu_of_ost,
            router_groups,
        }
    }

    /// Number of namespaces.
    pub fn namespaces(&self) -> usize {
        self.filesystems.len()
    }

    /// Global SSU index serving an OST of namespace `fs`.
    pub fn ssu_index(&self, fs: usize, ost: OstId) -> usize {
        self.ssu_of_ost[fs][ost.0 as usize]
    }

    /// Indices into `routers.routers` of the routers in FGR group `group`,
    /// from the table precomputed at build time. Empty for unknown groups.
    pub fn routers_of_group(&self, group: usize) -> &[usize] {
        self.router_groups.get(group).map_or(&[], |v| v.as_slice())
    }

    /// Controller couplet behind an OST of namespace `fs`.
    pub fn controller_of(&self, fs: usize, ost: OstId) -> &ControllerPair {
        &self.controllers[self.ssu_index(fs, ost)]
    }

    /// Total usable capacity across namespaces.
    pub fn capacity(&self) -> u64 {
        self.filesystems
            .iter()
            .map(spider_pfs::FileSystem::capacity)
            .sum()
    }

    /// Upgrade every controller couplet in place (§V-C campaign).
    pub fn upgrade_controllers(&mut self, to: spider_storage::controller::ControllerGeneration) {
        for c in &mut self.controllers {
            c.upgrade(to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CenterConfig;

    #[test]
    fn small_center_assembles() {
        let c = Center::build(CenterConfig::small());
        assert_eq!(c.namespaces(), 2);
        assert_eq!(c.filesystems[0].ost_count(), 16);
        assert_eq!(c.filesystems[1].ost_count(), 16);
        assert_eq!(c.controllers.len(), 4);
        // OSTs 0..8 of namespace 0 live in SSU 0, 8..16 in SSU 1.
        assert_eq!(c.ssu_index(0, OstId(0)), 0);
        assert_eq!(c.ssu_index(0, OstId(8)), 1);
        assert_eq!(c.ssu_index(1, OstId(0)), 2);
        assert_eq!(c.routers.len(), 32);
    }

    #[test]
    fn build_is_deterministic() {
        let a = Center::build(CenterConfig::small());
        let b = Center::build(CenterConfig::small());
        let caps = |c: &Center| {
            c.filesystems[0]
                .osts
                .iter()
                .map(|o| o.group.streaming_bandwidth().as_bytes_per_sec())
                .collect::<Vec<_>>()
        };
        assert_eq!(caps(&a), caps(&b));
    }

    #[test]
    fn paper_scale_center_assembles() {
        let c = Center::build(CenterConfig::spider2());
        assert_eq!(c.filesystems[0].ost_count(), 1_008);
        assert_eq!(c.filesystems[1].ost_count(), 1_008);
        assert_eq!(c.controllers.len(), 36);
        assert_eq!(c.routers.len(), 440);
        // >30 PB usable.
        assert!(c.capacity() > 30 * spider_simkit::PB);
    }

    #[test]
    fn router_group_table_matches_filter_scan() {
        let c = Center::build(CenterConfig::small());
        let groups = c.routers.groups as usize;
        let mut seen = 0;
        for g in 0..groups {
            let table = c.routers_of_group(g);
            let scan: Vec<usize> = c
                .routers
                .routers
                .iter()
                .enumerate()
                .filter(|(_, r)| r.group.0 as usize == g)
                .map(|(idx, _)| idx)
                .collect();
            assert_eq!(table, scan.as_slice(), "group {g}");
            seen += table.len();
        }
        assert_eq!(seen, c.routers.len(), "every router belongs to a group");
        assert!(c.routers_of_group(groups + 99).is_empty());
    }

    #[test]
    fn controller_upgrade_applies_everywhere() {
        use spider_storage::controller::ControllerGeneration;
        let mut c = Center::build(CenterConfig::small());
        c.upgrade_controllers(ControllerGeneration::Sfa12kUpgraded);
        assert!(c
            .controllers
            .iter()
            .all(|p| p.generation == ControllerGeneration::Sfa12kUpgraded));
    }
}
