#![warn(missing_docs)]

//! # spider-workload
//!
//! I/O workload models for the center simulation, parameterized from the
//! paper's published characterization of Spider I traffic (§II, [14]):
//! 60% write / 40% read requests; request sizes bimodal (small, under
//! 16 KB, or large multiples of 1 MB); inter-arrival and idle times
//! long-tailed, "modeled as a Pareto distribution".
//!
//! - [`spec`]: request/stream types and the workload presets (checkpoint/
//!   restart, analytics reads, interactive, data transfer, production mix).
//! - [`generator`]: turns a spec into a deterministic request trace and a
//!   server-side throughput log.
//! - [`mix`]: composes the center-wide mixed workload from several compute
//!   resources — the thing a data-centric PFS actually experiences.
//! - [`characterize`]: recovers the paper's workload statistics from a
//!   trace (write fraction, size bimodality, Pareto tail fit via the Hill
//!   estimator) — validating generator output against §II.
//! - [`ior`]: the IOR-like synthetic benchmark behind Figures 3 and 4
//!   (file-per-process, transfer-size sweep, stonewalling).
//! - [`obdsurvey`]: the `obdfilter-survey` equivalent measuring file-system
//!   software overhead over the block layer (§III-B).
//! - [`s3d`]: the S3D combustion application's checkpoint I/O pattern
//!   (§VI-A), used to evaluate libPIO.

pub mod characterize;
pub mod generator;
pub mod ior;
pub mod mix;
pub mod obdsurvey;
pub mod s3d;
pub mod spec;

pub use characterize::{characterize, Characterization};
pub use generator::{generate_trace, trace_to_series};
pub use ior::{run_ior, IorConfig, IorMode, IorReport, IorTarget};
pub use mix::{CenterWorkload, SourceKind, WorkloadSource};
pub use obdsurvey::{run_obdsurvey, ObdSurveyReport};
pub use s3d::S3dConfig;
pub use spec::{IoRequest, StreamSpec, WorkloadKind};
