//! Integration tests pinning the paper's headline quantitative claims at
//! full published scale, through the facade crate.

use spider::core::center::Center;
use spider::core::config::{CenterConfig, Scale};
use spider::core::experiments::{e03_client_scaling, e09_upgrade, e11_incident, registry};
use spider::core::flowsim::{solve, FlowTest};
use spider::prelude::*;

#[test]
fn spider2_shape_matches_the_paper() {
    let center = Center::build(CenterConfig::spider2());
    // §V: "20,160 2 TB near-line SAS disks ... 2,016 object storage
    // targets ... 288 storage nodes ... 440 Lustre I/O router nodes ...
    // 18,688 clients".
    assert_eq!(center.filesystems.len(), 2);
    assert_eq!(
        center
            .filesystems
            .iter()
            .map(spider::pfs::fs::FileSystem::ost_count)
            .sum::<usize>(),
        2_016
    );
    assert_eq!(
        center
            .filesystems
            .iter()
            .map(|f| f.oss.len())
            .sum::<usize>(),
        288
    );
    assert_eq!(center.routers.len(), 440);
    assert_eq!(center.config.compute_clients, 18_688);
    // 32 PB class capacity.
    assert!(center.capacity() > 30 * PB);
}

#[test]
fn figure4_plateau_is_320_gbs_per_namespace() {
    let center = Center::build(CenterConfig::spider2());
    let sol = solve(
        &center,
        &FlowTest {
            fs: 0,
            clients: 12_000,
            transfer_size: MIB,
            write: true,
            optimal_placement: false,
        },
    );
    let gbs = sol.aggregate.as_gb_per_sec();
    assert!((300.0..=340.0).contains(&gbs), "{gbs} GB/s");
}

#[test]
fn upgrade_claim_320_to_510() {
    let tables = e09_upgrade::run(Scale::Paper);
    let rows = &tables[0].rows;
    let get = |generation: &str| -> f64 {
        rows.iter()
            .find(|r| r[0] == generation && r[1] == "optimal")
            .unwrap()[3]
            .parse()
            .unwrap()
    };
    assert!((get("original") - 320.0).abs() < 15.0);
    assert!((get("upgraded") - 510.0).abs() < 20.0);
}

#[test]
fn figure4_knee_is_near_6000_clients() {
    let tables = e03_client_scaling::run(Scale::Paper);
    let series: Vec<(u32, f64)> = tables[0]
        .rows
        .iter()
        .map(|r| (r[0].parse().unwrap(), r[1].parse().unwrap()))
        .collect();
    let plateau = series.last().unwrap().1;
    let at6k = series.iter().find(|(c, _)| *c == 6_000).unwrap().1;
    let at4k = series.iter().find(|(c, _)| *c == 4_000).unwrap().1;
    assert!(at6k > 0.9 * plateau, "{at6k} vs plateau {plateau}");
    assert!(at4k < 0.8 * plateau, "{at4k} vs plateau {plateau}");
}

#[test]
fn incident_loses_a_million_files_on_spider1_wiring_only() {
    let tables = e11_incident::run(Scale::Paper);
    let rows = &tables[0].rows;
    let lost_5enc: u64 = rows[0][3].parse().unwrap();
    let lost_10enc: u64 = rows[1][3].parse().unwrap();
    assert!(lost_5enc > 1_000_000);
    assert_eq!(lost_10enc, 0);
    let days: f64 = rows[0][6].parse().unwrap();
    assert!(days > 14.0, "recovery took more than two weeks: {days}");
}

#[test]
fn every_experiment_produces_output_at_small_scale() {
    for entry in registry() {
        let tables = (entry.run)(Scale::Small);
        assert!(!tables.is_empty(), "{} empty", entry.id);
        for t in &tables {
            assert!(!t.headers.is_empty());
            assert!(
                !t.is_empty(),
                "{}: table '{}' has no rows",
                entry.id,
                t.title
            );
        }
    }
}
