//! E18 — §IV-B / LL9: release testing at extreme scale.
//!
//! "These tests identify edge cases and problems that would not manifest
//! themselves otherwise" — quantified: detection probability of a candidate
//! release's latent defects on a vendor testbed vs a full-scale Titan test,
//! plus the create-storm metadata check (an at-scale behaviour a testbed
//! cannot exercise, §IV-C).

use spider_pfs::mds::MdsCluster;
use spider_tools::release::{CandidateRelease, TestCampaign};

use crate::config::Scale;
use crate::report::{pct, Table};
use crate::rpcsim::run_create_storm;

/// Run E18.
pub fn run(_scale: Scale) -> Vec<Table> {
    let release = CandidateRelease::representative("lustre-2.4.0-rc1");
    let mut detect = Table::new(
        "E18a: defect detection probability by test campaign",
        &[
            "defect (trigger/client-hr)",
            "severity",
            "64-client testbed, 1 week",
            "Titan full scale, 12 h",
        ],
    );
    let testbed = TestCampaign::small_testbed();
    let titan = TestCampaign::titan_full_scale();
    for d in &release.defects {
        detect.row(vec![
            format!("{:.0e}", d.trigger_rate),
            d.severity.to_string(),
            pct(d.detection_probability(testbed.clients, testbed.hours)),
            pct(d.detection_probability(titan.clients, titan.hours)),
        ]);
    }

    // The at-scale metadata behaviour a release test must cover: an
    // 18,688-client file-per-process create storm.
    let mut storm = Table::new(
        "E18b: checkpoint create storm (18,688 file-per-process creates)",
        &[
            "metadata configuration",
            "drain time (s)",
            "max create latency (s)",
        ],
    );
    for (name, cluster) in [
        ("single MDS", MdsCluster::single()),
        ("DNE x2", MdsCluster::dne(2)),
        ("DNE x4", MdsCluster::dne(4)),
    ] {
        let rep = run_create_storm(&cluster, 18_688);
        storm.row(vec![
            name.into(),
            format!("{:.2}", rep.drain_time.as_secs_f64()),
            format!("{:.2}", rep.max_latency),
        ]);
    }
    super::trace::experiment("E18", 1, 2);
    vec![detect, storm]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn e18a_extreme_scale_defect_needs_titan() {
        let t = &run(Scale::Small)[0];
        // Last defect is the severity-5 extreme-scale edge case.
        let row = t.rows.last().unwrap();
        let testbed: f64 = row[2].trim_end_matches('%').parse().unwrap();
        let titan: f64 = row[3].trim_end_matches('%').parse().unwrap();
        assert!(testbed < 0.1, "{testbed}%");
        assert!(titan > 5.0 * testbed.max(0.01), "{titan}% vs {testbed}%");
    }

    #[test]
    fn e18b_dne_shortens_the_storm() {
        let t = &run(Scale::Small)[1];
        let drain = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(drain("DNE x4") < drain("DNE x2"));
        assert!(drain("DNE x2") < drain("single MDS"));
        // Single MDS: ~3.7 s of blocked application time per checkpoint.
        assert!((drain("single MDS") - 3.7).abs() < 0.2);
    }
}
