//! Streaming statistics, percentiles, and tail-index estimation.

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every value of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, it: I) {
        for x in it {
            self.push(x);
        }
    }

    /// Build from an iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(it: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(it);
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std dev / mean); 0 when mean is 0.
    ///
    /// This is the "performance envelope" metric of §V-A: the SOW required
    /// RAID-group bandwidth to vary no more than 5% of the average.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Relative spread `(max - min) / mean`; the intra-SSU "slowest within 5%
    /// of the fastest" criterion uses `(max - min) / max`.
    pub fn relative_spread(&self) -> f64 {
        let m = self.mean();
        if self.n == 0 || m == 0.0 {
            0.0
        } else {
            (self.max - self.min) / m
        }
    }

    /// `(max - min) / max`: how far the slowest member falls below the
    /// fastest, as used by the SSU acceptance criterion in §V-A.
    pub fn below_fastest(&self) -> f64 {
        if self.n == 0 || self.max <= 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.max
        }
    }

    /// Sample (Bessel-corrected, `n - 1`) variance; 0 for fewer than 2
    /// observations. The population [`variance`](Self::variance) describes
    /// the data at hand; this one estimates the distribution the data were
    /// drawn from, which is what confidence intervals need.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean, `sqrt(sample_variance / n)`; 0 when empty.
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sample_variance() / self.n as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval on the
    /// mean (`z = 1.96 * sem`). Monte Carlo replication counts are large
    /// enough that the normal approximation is the right default; for rare
    /// binary outcomes use [`wilson_interval`] instead.
    pub fn ci95_half_width(&self) -> f64 {
        const Z_95: f64 = 1.959_963_984_540_054;
        Z_95 * self.sem()
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Wilson score interval for a binomial proportion: `(lo, hi)` bounds on the
/// success probability after observing `successes` of `trials`, at normal
/// quantile `z` (1.96 for 95%).
///
/// Unlike the Wald interval, Wilson stays inside `[0, 1]` and remains
/// informative when `successes` is 0 or equals `trials` — exactly the regime
/// rare-event reliability estimates live in (e.g. "0 data-loss replications
/// out of 10,000" still yields a nonzero upper bound).
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(successes <= trials, "more successes than trials");
    assert!(z >= 0.0, "z must be non-negative");
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let spread = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((center - spread) / denom).max(0.0),
        ((center + spread) / denom).min(1.0),
    )
}

/// [`wilson_interval`] at 95% confidence.
pub fn wilson95(successes: u64, trials: u64) -> (f64, f64) {
    wilson_interval(successes, trials, 1.959_963_984_540_054)
}

/// Percentile (`q` in `[0, 1]`) of a sample by linear interpolation.
/// Sorts a copy; panics on an empty slice or NaN values.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Hill estimator for the tail index `alpha` of a heavy-tailed sample, using
/// the largest `k` order statistics.
///
/// `spider-workload::characterize` fits the observed inter-arrival and idle
/// times with this estimator to verify the paper's Pareto claim (§II): a
/// genuinely Pareto(alpha) sample yields an estimate near `alpha`, while a
/// light-tailed (e.g. exponential) sample yields a large, drifting estimate.
pub fn hill_tail_index(samples: &[f64], k: usize) -> f64 {
    assert!(k >= 1 && k < samples.len(), "need 1 <= k < n");
    let mut v: Vec<f64> = samples.iter().copied().filter(|x| *x > 0.0).collect();
    assert!(v.len() > k, "not enough positive samples");
    v.sort_by(|a, b| b.partial_cmp(a).expect("NaN in hill input"));
    let x_k = v[k]; // (k+1)-th largest
    let sum: f64 = v[..k].iter().map(|x| (x / x_k).ln()).sum();
    k as f64 / sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = OnlineStats::from_iter(xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.relative_spread(), 0.0);
        assert_eq!(s.below_fastest(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let whole = OnlineStats::from_iter(xs.iter().copied());
        let mut a = OnlineStats::from_iter(xs[..37].iter().copied());
        let b = OnlineStats::from_iter(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut s = OnlineStats::from_iter(xs);
        let before = (s.mean(), s.variance(), s.count());
        s.merge(&OnlineStats::new());
        assert_eq!((s.mean(), s.variance(), s.count()), before);

        let mut e = OnlineStats::new();
        e.merge(&OnlineStats::from_iter(xs));
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_and_ci() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = OnlineStats::from_iter(xs);
        // Population variance 4.0 over n=8 -> sample variance 32/7.
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        let sem = (32.0 / 7.0 / 8.0_f64).sqrt();
        assert!((s.sem() - sem).abs() < 1e-12);
        assert!((s.ci95_half_width() - 1.959_963_984_540_054 * sem).abs() < 1e-12);
        // Degenerate accumulators stay benign.
        assert_eq!(OnlineStats::new().sem(), 0.0);
        assert_eq!(OnlineStats::from_iter([1.0]).ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_covers_the_true_mean_at_roughly_the_nominal_rate() {
        let mut rng = SimRng::seed_from_u64(123);
        let mut covered = 0;
        let trials = 400;
        for _ in 0..trials {
            let s = OnlineStats::from_iter((0..64).map(|_| rng.exp(5.0)));
            if (s.mean() - 5.0).abs() <= s.ci95_half_width() {
                covered += 1;
            }
        }
        // Normal-approx CI on skewed exponential data at n=64: allow a
        // generous band around the nominal 95%.
        let rate = f64::from(covered) / f64::from(trials);
        assert!((0.88..=0.99).contains(&rate), "coverage {rate}");
    }

    #[test]
    fn wilson_bounds_behave() {
        // Symmetric case contains the point estimate.
        let (lo, hi) = wilson95(50, 100);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        // Zero successes still exclude nothing at the low end but bound the
        // high end away from 1.
        let (lo0, hi0) = wilson95(0, 10_000);
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 1e-3, "{hi0}");
        // All successes mirror that.
        let (lo1, hi1) = wilson95(10_000, 10_000);
        assert_eq!(hi1, 1.0);
        assert!(lo1 > 0.999);
        // Degenerate inputs.
        assert_eq!(wilson95(0, 0), (0.0, 1.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 1.0), 40.0);
        assert!((percentile(&xs, 0.5) - 25.0).abs() < 1e-12);
        // Single element: every percentile is that element.
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn below_fastest_matches_acceptance_criterion() {
        // Slowest group at 95 of fastest 100 -> exactly 5%.
        let s = OnlineStats::from_iter([95.0, 98.0, 100.0]);
        assert!((s.below_fastest() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn hill_recovers_pareto_alpha() {
        let mut rng = SimRng::seed_from_u64(99);
        let alpha = 1.5;
        let xs: Vec<f64> = (0..50_000).map(|_| rng.pareto(1.0, alpha)).collect();
        let est = hill_tail_index(&xs, 2_000);
        assert!((est - alpha).abs() < 0.15, "estimate {est}");
    }

    #[test]
    fn hill_distinguishes_light_tails() {
        let mut rng = SimRng::seed_from_u64(100);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.exp(1.0)).collect();
        let est = hill_tail_index(&xs, 2_000);
        // Exponential has "infinite" tail index; estimate should be well
        // above any plausible Pareto fit.
        assert!(est > 3.0, "estimate {est}");
    }
}
