#![warn(missing_docs)]

//! # spider-pfs
//!
//! A Lustre-like parallel file system layer over the `spider-storage`
//! substrate — the software half of the Spider deployments.
//!
//! - [`layout`]: file striping across OSTs (stripe count/size, object
//!   mapping) — the paper's best-practice knobs (§VII).
//! - [`ost`]: Object Storage Targets wrapping RAID groups, with the
//!   fullness-dependent performance degradation the paper operates around
//!   ("severe performance degradation after the resource is 70% or more
//!   full", §IV-C; "direct performance degradation when the utilization ...
//!   is greater than 50%", §VI-C) and an aging model for E13.
//! - [`oss`]: Object Storage Servers — obdfilter overhead, journaling modes
//!   (including the OLCF-funded high-performance journaling, §IV-D), and the
//!   server network limit.
//! - [`mds`]: the Metadata Server queueing model; one MDS per namespace is
//!   Lustre's scaling limit (§IV-C) and the reason OLCF runs multiple
//!   namespaces; DNE striping is modeled for the "use both" recommendation.
//! - [`namespace`]: an in-memory namespace tree (directories, files, stripe
//!   metadata, timestamps) that scales to millions of inodes.
//! - [`fs`]: a mounted file system instance tying MDS + OSTs + namespace
//!   together, with OST allocation policies.
//! - [`purge`]: the 14-day automatic purge (§IV-C).
//! - [`journal`]: the Lustre journal whose loss in the 2010 incident cost
//!   "more than a million files" (§IV-E), plus the recovery model.
//! - [`client`]: Lustre client RPC behaviour — 1 MiB RPCs, pipelining, and
//!   the transfer-size efficiency curve behind Figure 3.

pub mod client;
pub mod fs;
pub mod journal;
pub mod layout;
pub mod mds;
pub mod namespace;
pub mod oss;
pub mod ost;
pub mod purge;
pub mod recovery;

pub use client::ClientConfig;
pub use fs::{FileSystem, FsConfig, OstAllocPolicy};
pub use journal::{Journal, RecoveryModel, RecoveryOutcome};
pub use layout::StripeLayout;
pub use mds::{MdsCluster, MdsOp, MetadataServer};
pub use namespace::{FileMeta, Inode, InodeId, InodeKind, Namespace};
pub use oss::{JournalingMode, ObjectStorageServer, OssId};
pub use ost::{Ost, OstId};
pub use purge::{purge, PurgeReport};
pub use recovery::{FailoverModel, RecoveryMode};
