#![warn(missing_docs)]

//! # spider-net
//!
//! The interconnect substrate between Titan's compute nodes and the Spider
//! storage floor (§V-B, "Tuning the I/O Routing Layer").
//!
//! - [`torus`]: a generic 3D torus with dimension-ordered routing and
//!   per-link load accounting.
//! - [`gemini`]: Titan's Gemini network — torus dimensions, per-dimension
//!   link capacities, and the cabinet floor-grid geometry of Figure 2.
//! - [`ib`]: the SION InfiniBand SAN — leaf and core switches connecting
//!   LNET routers to the Lustre servers.
//! - [`lnet`]: LNET I/O routers with Gemini-side and InfiniBand-side network
//!   interfaces, router groups and placement schemes.
//! - [`fgr`]: OLCF's fine-grained routing — topology-aware client-to-router
//!   assignment — plus the naive baselines it is compared against.
//! - [`maxmin`]: a progressive-filling max-min fair bandwidth allocator used
//!   as the throughput engine for end-to-end experiments.

pub mod cable;
pub mod fgr;
pub mod gemini;
pub mod ib;
pub mod lnet;
pub mod maxmin;
pub mod session;
pub mod torus;

pub use cable::{diagnose, CableDiagnosis, CablePlant, PortCounters};
pub use fgr::{CongestionReport, FgrAssignment, PlacementScheme};
pub use gemini::TitanGeometry;
pub use ib::{IbFabric, LeafId};
pub use lnet::{Router, RouterGroupId, RouterId, RouterSet};
pub use maxmin::{FlowSpec, MaxMinProblem, ResourceId, SolveStats};
pub use session::{FlowId, MemoScope, SessionStats, SolveSession};
pub use torus::{Coord, LinkId, LinkLoads, Torus};
