//! libPIO — the balanced placement runtime (§VI-A).
//!
//! "Our placement library (libPIO) distributes the load on different storage
//! components based on their utilization and reduces the load imbalance. In
//! particular, it takes into account the load on clients, I/O routers,
//! OSSes, and OSTs and encapsulates these low-level infrastructure details
//! to provide I/O placement suggestions for user applications via a simple
//! interface."
//!
//! The library keeps exponentially-decayed load estimates per component and
//! answers placement requests with the least-loaded feasible choices,
//! scoring an OST by its own load plus its OSS's (an OST behind a busy
//! server is a bad pick even if the OST itself is idle).

use spider_simkit::{OnlineStats, SimDuration, SimTime};

/// A point-in-time view of component loads (arbitrary units; bytes of
/// outstanding I/O in the experiments).
#[derive(Debug, Clone)]
pub struct LoadSnapshot {
    /// Per-OST load.
    pub ost: Vec<f64>,
    /// Per-OSS load.
    pub oss: Vec<f64>,
    /// Per-router load.
    pub router: Vec<f64>,
}

/// A placement request from an application.
#[derive(Debug, Clone)]
pub struct PlacementRequest {
    /// How many OSTs the job wants to stripe over.
    pub n_osts: usize,
    /// Router indices the client can reach (FGR's candidate set); empty
    /// means routers are not part of the decision.
    pub router_options: Vec<usize>,
}

/// The placement library.
///
/// # Examples
///
/// ```
/// use spider_tools::libpio::{Libpio, PlacementRequest};
///
/// let mut lib = Libpio::new(8, 2, 4);
/// lib.record_ost_io(0, 1_000.0); // OST 0 is busy
/// let (osts, router) = lib.suggest(&PlacementRequest {
///     n_osts: 2,
///     router_options: vec![1, 3],
/// });
/// assert!(!osts.contains(&0), "busy OST avoided");
/// assert!(router.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Libpio {
    ost_load: Vec<f64>,
    oss_load: Vec<f64>,
    router_load: Vec<f64>,
    osts_per_oss: usize,
    /// Load half-life for exponential decay.
    half_life: SimDuration,
    last_decay: SimTime,
    /// Weight of the parent OSS load in an OST's score.
    oss_weight: f64,
}

impl Libpio {
    /// A library instance for `n_osts` OSTs over `n_oss` servers (contiguous
    /// assignment) and `n_routers` routers.
    pub fn new(n_osts: usize, n_oss: usize, n_routers: usize) -> Self {
        assert!(n_osts > 0 && n_oss > 0);
        Libpio {
            ost_load: vec![0.0; n_osts],
            oss_load: vec![0.0; n_oss],
            router_load: vec![0.0; n_routers.max(1)],
            osts_per_oss: n_osts.div_ceil(n_oss),
            half_life: SimDuration::from_secs(60),
            last_decay: SimTime::ZERO,
            oss_weight: 0.5,
        }
    }

    /// The OSS serving an OST.
    pub fn oss_of(&self, ost: usize) -> usize {
        (ost / self.osts_per_oss).min(self.oss_load.len() - 1)
    }

    /// Account `bytes` of I/O against an OST (and its OSS).
    pub fn record_ost_io(&mut self, ost: usize, bytes: f64) {
        self.ost_load[ost] += bytes;
        let oss = self.oss_of(ost);
        self.oss_load[oss] += bytes;
    }

    /// Account `bytes` of traffic through a router.
    pub fn record_router_io(&mut self, router: usize, bytes: f64) {
        self.router_load[router] += bytes;
    }

    /// Exponentially decay all loads to time `now`.
    pub fn decay_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_decay);
        if dt.is_zero() {
            return;
        }
        self.last_decay = now;
        let k = (-std::f64::consts::LN_2 * dt.as_secs_f64() / self.half_life.as_secs_f64()).exp();
        for l in self
            .ost_load
            .iter_mut()
            .chain(self.oss_load.iter_mut())
            .chain(self.router_load.iter_mut())
        {
            *l *= k;
        }
    }

    /// The score used to rank OSTs (lower = better).
    fn ost_score(&self, ost: usize) -> f64 {
        self.ost_load[ost] + self.oss_weight * self.oss_load[self.oss_of(ost)]
    }

    /// Answer a placement request: the `n_osts` best-scored OSTs (spread
    /// over distinct OSSes when possible) and the least-loaded candidate
    /// router.
    pub fn suggest(&self, req: &PlacementRequest) -> (Vec<usize>, Option<usize>) {
        let n = req.n_osts.clamp(1, self.ost_load.len());
        // Rank all OSTs by score; tie-break by index for determinism.
        let mut ranked: Vec<usize> = (0..self.ost_load.len()).collect();
        ranked.sort_by(|&a, &b| {
            self.ost_score(a)
                .total_cmp(&self.ost_score(b))
                .then(a.cmp(&b))
        });
        // First pass: prefer distinct OSSes, but never at the price of a
        // badly-loaded pick — a candidate qualifies only while its score is
        // within 1.5x of the n-th best (spreading should not override a
        // real load difference).
        let threshold = self.ost_score(ranked[n - 1]) * 1.5 + 1e-9;
        let mut picked = Vec::with_capacity(n);
        let mut used_oss = std::collections::BTreeSet::new();
        for &o in ranked.iter().take(2 * n) {
            if picked.len() == n || self.ost_score(o) > threshold {
                break;
            }
            if used_oss.insert(self.oss_of(o)) {
                picked.push(o);
            }
        }
        // Second pass: fill up regardless of OSS.
        for &o in &ranked {
            if picked.len() == n {
                break;
            }
            if !picked.contains(&o) {
                picked.push(o);
            }
        }
        let router = req.router_options.iter().copied().min_by(|&a, &b| {
            self.router_load[a]
                .total_cmp(&self.router_load[b])
                .then(a.cmp(&b))
        });
        (picked, router)
    }

    /// Current snapshot (for monitoring/experiments).
    pub fn snapshot(&self) -> LoadSnapshot {
        LoadSnapshot {
            ost: self.ost_load.clone(),
            oss: self.oss_load.clone(),
            router: self.router_load.clone(),
        }
    }

    /// Imbalance of the OST loads: coefficient of variation.
    pub fn ost_imbalance(&self) -> f64 {
        OnlineStats::from_iter(self.ost_load.iter().copied()).cv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggestions_avoid_loaded_osts() {
        let mut lib = Libpio::new(8, 2, 2);
        lib.record_ost_io(0, 100.0);
        lib.record_ost_io(1, 100.0);
        let (picked, _) = lib.suggest(&PlacementRequest {
            n_osts: 2,
            router_options: vec![],
        });
        assert!(!picked.contains(&0) && !picked.contains(&1), "{picked:?}");
    }

    #[test]
    fn oss_load_penalizes_sibling_osts() {
        // OSTs 0..4 on OSS0, 4..8 on OSS1. Load OST 0 heavily: its OSS0
        // siblings (1,2,3) should rank below OSS1's OSTs.
        let mut lib = Libpio::new(8, 2, 1);
        lib.record_ost_io(0, 1_000.0);
        let (picked, _) = lib.suggest(&PlacementRequest {
            n_osts: 4,
            router_options: vec![],
        });
        // Prefer-distinct-OSS pass picks one per OSS first, then fills from
        // the idle OSS side.
        let from_oss1 = picked.iter().filter(|&&o| o >= 4).count();
        assert!(from_oss1 >= 3, "{picked:?}");
    }

    #[test]
    fn router_choice_is_least_loaded() {
        let mut lib = Libpio::new(4, 1, 4);
        lib.record_router_io(0, 50.0);
        lib.record_router_io(2, 10.0);
        let (_, router) = lib.suggest(&PlacementRequest {
            n_osts: 1,
            router_options: vec![0, 2],
        });
        assert_eq!(router, Some(2));
        let (_, none) = lib.suggest(&PlacementRequest {
            n_osts: 1,
            router_options: vec![],
        });
        assert_eq!(none, None);
    }

    #[test]
    fn decay_forgets_old_load() {
        let mut lib = Libpio::new(4, 1, 1);
        lib.record_ost_io(0, 1_000.0);
        lib.decay_to(SimTime::from_secs(600)); // 10 half-lives
        assert!(lib.snapshot().ost[0] < 1.0);
        let (picked, _) = lib.suggest(&PlacementRequest {
            n_osts: 1,
            router_options: vec![],
        });
        // With load decayed to ~1, OST 0 is effectively tied again but
        // still slightly worse; the winner is OST 1 (lowest score).
        assert_ne!(picked[0], 0);
    }

    #[test]
    fn balanced_placement_reduces_imbalance_vs_round_robin_under_skew() {
        // Background load hammers OSTs 0..8. Place 64 jobs of 4 OSTs each
        // via libPIO vs naive round-robin; libPIO should end far better
        // balanced.
        let setup = || {
            let mut lib = Libpio::new(32, 8, 1);
            for o in 0..8 {
                lib.record_ost_io(o, 500.0);
            }
            lib
        };
        // libPIO placement (feedback: each placement records its own load).
        let mut lib = setup();
        for _ in 0..64 {
            let (picked, _) = lib.suggest(&PlacementRequest {
                n_osts: 4,
                router_options: vec![],
            });
            for o in picked {
                lib.record_ost_io(o, 100.0);
            }
        }
        let libpio_cv = lib.ost_imbalance();
        // Round-robin placement over the same background.
        let mut rr = setup();
        let mut cursor = 0;
        for _ in 0..64 {
            for _ in 0..4 {
                rr.record_ost_io(cursor % 32, 100.0);
                cursor += 1;
            }
        }
        let rr_cv = rr.ost_imbalance();
        assert!(
            libpio_cv < 0.5 * rr_cv,
            "libPIO cv {libpio_cv:.3} vs RR cv {rr_cv:.3}"
        );
    }

    #[test]
    fn suggestions_are_deterministic() {
        let mk = || {
            let mut lib = Libpio::new(16, 4, 2);
            lib.record_ost_io(3, 10.0);
            lib.record_router_io(1, 5.0);
            lib.suggest(&PlacementRequest {
                n_osts: 6,
                router_options: vec![0, 1],
            })
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn request_larger_than_fleet_is_clamped() {
        let lib = Libpio::new(4, 2, 1);
        let (picked, _) = lib.suggest(&PlacementRequest {
            n_osts: 100,
            router_options: vec![],
        });
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "no duplicates");
    }
}
