//! The slow-disk culling campaign (§V-A, Lesson Learned 13).
//!
//! "Block-level benchmarks were run to ensure that the slowest RAID group
//! performance over a single SSU was within the 5% of the fastest and across
//! the 2,016 RAID groups the performance varied no more than the 5% of the
//! average. We conducted multiple rounds of these tests, eliminating the
//! slowest performing disks at each round. ... Overall, during the
//! deployment process we replaced around 1,500 of 20,160 fully functioning,
//! but slower, disks. After deployment, the same process was repeated at the
//! file system level and we eliminated approximately another 500 disks."
//!
//! The campaign here works the same way: measure every group, bin them,
//! find the slow member disks of the lowest bins, replace them with screened
//! spares, repeat until the envelopes hold (or a round budget runs out).

use spider_simkit::{OnlineStats, SimRng};
use spider_storage::blockbench::bin_groups;
use spider_storage::disk::DiskHealth;
use spider_storage::fleet::StorageFleet;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CullingConfig {
    /// Intra-SSU acceptance: slowest group within this fraction of the
    /// fastest (the SOW's 5%, relaxed to 7.5% in production).
    pub intra_ssu_tolerance: f64,
    /// Fleet acceptance: every group within this fraction of the mean.
    pub fleet_tolerance: f64,
    /// A member disk is flagged when its rate falls this far below its
    /// group's *median* member (robust against healthy manufacturing
    /// spread).
    pub member_flag_threshold: f64,
    /// Performance bins per round.
    pub bins: usize,
    /// Maximum measurement/replacement rounds.
    pub max_rounds: usize,
}

impl Default for CullingConfig {
    fn default() -> Self {
        CullingConfig {
            intra_ssu_tolerance: 0.05,
            fleet_tolerance: 0.05,
            member_flag_threshold: 0.08,
            bins: 10,
            max_rounds: 8,
        }
    }
}

/// One round's record.
#[derive(Debug, Clone)]
pub struct CullingRound {
    /// Round index (1-based).
    pub round: usize,
    /// Disks replaced this round.
    pub replaced: usize,
    /// Fleet envelope after the round: worst deviation from the mean.
    pub fleet_deviation: f64,
    /// Worst intra-SSU below-fastest spread after the round.
    pub worst_ssu_spread: f64,
    /// Mean group streaming bandwidth after the round (bytes/s).
    pub mean_group_rate: f64,
    /// Slowest group streaming bandwidth after the round (bytes/s).
    pub min_group_rate: f64,
}

/// Full campaign record.
#[derive(Debug, Clone)]
pub struct CullingReport {
    /// Per-round details.
    pub rounds: Vec<CullingRound>,
    /// Total disks replaced.
    pub total_replaced: usize,
    /// Did the fleet meet both envelopes at the end?
    pub accepted: bool,
    /// Synchronized-workload bandwidth gain: after/before ratio of
    /// `n_groups x min(group rate)`.
    pub sync_bandwidth_gain: f64,
}

fn fleet_deviation(stats: &OnlineStats) -> f64 {
    let m = stats.mean();
    if m == 0.0 {
        return 0.0;
    }
    ((stats.max() - m).abs()).max((m - stats.min()).abs()) / m
}

fn worst_ssu_spread(fleet: &StorageFleet) -> f64 {
    fleet
        .ssus
        .iter()
        .map(|s| s.group_envelope().below_fastest())
        .fold(0.0, f64::max)
}

/// Run the campaign, mutating the fleet (replacing flagged disks).
pub fn run_culling_campaign(
    fleet: &mut StorageFleet,
    config: &CullingConfig,
    rng: &mut SimRng,
) -> CullingReport {
    let before_stats = fleet.fleet_envelope();
    let before_min = before_stats.min();
    let group_count = fleet.group_count() as f64;
    let mut rounds: Vec<CullingRound> = Vec::new();
    let mut total_replaced = 0usize;
    let mut best_deviation = f64::INFINITY;

    for round in 1..=config.max_rounds {
        // Measure: streaming bandwidth of every group, then bin.
        let rates: Vec<_> = fleet
            .groups()
            .map(spider_storage::RaidGroup::streaming_bandwidth)
            .collect();
        let (bins, _edges, stats) = bin_groups(&rates, config.bins);

        let accepted = fleet_deviation(&stats) <= config.fleet_tolerance
            && worst_ssu_spread(fleet) <= config.intra_ssu_tolerance;
        if accepted {
            break;
        }

        // Inspect groups in the lowest bins; flag members materially slower
        // than their group's fastest member.
        let mut replaced = 0usize;
        let slow_bin_cutoff = {
            // Lowest bins holding the bottom ~quarter of groups.
            let mut counts = vec![0usize; config.bins];
            for &b in &bins {
                counts[b] += 1;
            }
            let mut acc = 0;
            let mut cutoff = 0;
            for (i, c) in counts.iter().enumerate() {
                acc += c;
                cutoff = i;
                if acc as f64 >= 0.25 * group_count {
                    break;
                }
            }
            cutoff
        };
        let pop = fleet.spec.ssu.disks.clone();
        for (g, group) in fleet.groups_mut().enumerate() {
            if bins[g] > slow_bin_cutoff {
                continue;
            }
            // Robust reference: the group's median member rate. Healthy
            // manufacturing spread sits within a few percent of it; the
            // slow tail falls well below.
            let mut rates: Vec<f64> = group
                .members
                .iter()
                .filter(|d| d.in_service())
                .map(|d| d.actual_seq.as_bytes_per_sec())
                .collect();
            rates.sort_by(f64::total_cmp);
            let median = rates[rates.len() / 2];
            let mut flagged_any = false;
            for m in 0..group.members.len() {
                let d = &mut group.members[m];
                if !d.in_service() {
                    continue;
                }
                let gap = 1.0 - d.actual_seq.as_bytes_per_sec() / median;
                if gap > config.member_flag_threshold {
                    d.health = DiskHealth::FlaggedSlow;
                    d.replace_with_screened(&pop, rng);
                    replaced += 1;
                    flagged_any = true;
                }
            }
            // No statistical outlier, but the group still sits in a slow
            // bin: chase the envelope by replacing its single slowest
            // in-service member ("eliminating the slowest performing disks
            // at each round", §V-A).
            if !flagged_any {
                if let Some(slowest) = group
                    .members
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.in_service())
                    .min_by(|(_, a), (_, b)| {
                        a.actual_seq
                            .as_bytes_per_sec()
                            .total_cmp(&b.actual_seq.as_bytes_per_sec())
                    })
                    .map(|(i, _)| i)
                {
                    let d = &mut group.members[slowest];
                    d.health = DiskHealth::FlaggedSlow;
                    d.replace_with_screened(&pop, rng);
                    replaced += 1;
                }
            }
        }
        total_replaced += replaced;

        let after = fleet.fleet_envelope();
        let deviation = fleet_deviation(&after);
        rounds.push(CullingRound {
            round,
            replaced,
            fleet_deviation: deviation,
            worst_ssu_spread: worst_ssu_spread(fleet),
            mean_group_rate: after.mean(),
            min_group_rate: after.min(),
        });
        if replaced == 0 {
            break; // nothing left to act on: envelopes as good as they get
        }
        // Futility stop: once envelope-chasing stops producing material
        // improvement, further rounds only churn hardware. (At fleet scale
        // a 5% envelope can be unreachable — exactly why the requirement
        // "was determined to be prohibitive" and relaxed to 7.5%.)
        if deviation > best_deviation - 0.002 && rounds.len() >= 2 {
            break;
        }
        best_deviation = best_deviation.min(deviation);
    }

    let final_stats = fleet.fleet_envelope();
    let accepted = fleet_deviation(&final_stats) <= config.fleet_tolerance
        && worst_ssu_spread(fleet) <= config.intra_ssu_tolerance;
    CullingReport {
        rounds,
        total_replaced,
        accepted,
        sync_bandwidth_gain: if before_min > 0.0 {
            final_stats.min() / before_min
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_storage::fleet::FleetSpec;

    fn fleet(seed: u64, ssus: usize, groups: usize) -> StorageFleet {
        let mut spec = FleetSpec::spider2();
        spec.ssus = ssus;
        spec.ssu.groups = groups;
        let mut rng = SimRng::seed_from_u64(seed);
        StorageFleet::sample(spec, &mut rng)
    }

    #[test]
    fn campaign_reaches_acceptance() {
        let mut f = fleet(1, 4, 14); // 560 disks
        assert!(!f.meets_fleet_envelope(0.05), "raw fleet fails acceptance");
        let mut rng = SimRng::seed_from_u64(2);
        let report = run_culling_campaign(&mut f, &CullingConfig::default(), &mut rng);
        assert!(report.accepted, "rounds: {:?}", report.rounds.len());
        assert!(f.meets_fleet_envelope(0.05));
    }

    #[test]
    fn replacement_fraction_matches_paper_scale() {
        // OLCF replaced ~2,000 of 20,160 (~10%). With the default ~9% slow
        // tail, the campaign should replace a similar fraction.
        let mut f = fleet(3, 4, 14);
        let disks = f.spec.total_disks() as f64;
        let mut rng = SimRng::seed_from_u64(4);
        let report = run_culling_campaign(&mut f, &CullingConfig::default(), &mut rng);
        let frac = report.total_replaced as f64 / disks;
        assert!(
            (0.04..=0.20).contains(&frac),
            "replaced {:.1}% of the fleet",
            frac * 100.0
        );
    }

    #[test]
    fn culling_lifts_the_slowest_group() {
        let mut f = fleet(5, 2, 10);
        let before = f.fleet_envelope().min();
        let mut rng = SimRng::seed_from_u64(6);
        let report = run_culling_campaign(&mut f, &CullingConfig::default(), &mut rng);
        let after = f.fleet_envelope().min();
        assert!(after > before, "{after} vs {before}");
        assert!(
            report.sync_bandwidth_gain > 1.05,
            "{}",
            report.sync_bandwidth_gain
        );
    }

    #[test]
    fn relaxed_7_5_percent_envelope_needs_fewer_replacements() {
        // The production relaxation (§V-A): 5% was "prohibitive",
        // contractually adjusted to 7.5%.
        let mut strict_fleet = fleet(7, 2, 10);
        let mut relaxed_fleet = fleet(7, 2, 10);
        let mut rng_a = SimRng::seed_from_u64(8);
        let mut rng_b = SimRng::seed_from_u64(8);
        let strict = run_culling_campaign(&mut strict_fleet, &CullingConfig::default(), &mut rng_a);
        let relaxed_cfg = CullingConfig {
            intra_ssu_tolerance: 0.075,
            fleet_tolerance: 0.075,
            ..CullingConfig::default()
        };
        let relaxed = run_culling_campaign(&mut relaxed_fleet, &relaxed_cfg, &mut rng_b);
        assert!(
            relaxed.total_replaced <= strict.total_replaced,
            "relaxed {} vs strict {}",
            relaxed.total_replaced,
            strict.total_replaced
        );
        assert!(relaxed.accepted);
    }

    #[test]
    fn already_clean_fleet_is_accepted_without_replacements() {
        let mut spec = FleetSpec::small_test();
        spec.ssu.disks.slow_fraction = 0.0;
        spec.ssu.disks.core_sigma = 0.004;
        let mut rng = SimRng::seed_from_u64(9);
        let mut f = StorageFleet::sample(spec, &mut rng);
        let report = run_culling_campaign(&mut f, &CullingConfig::default(), &mut rng);
        assert!(report.accepted);
        assert_eq!(report.total_replaced, 0);
        assert!(report.rounds.is_empty());
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let mut f = fleet(11, 2, 8);
            let mut rng = SimRng::seed_from_u64(12);
            let r = run_culling_campaign(&mut f, &CullingConfig::default(), &mut rng);
            (r.total_replaced, r.rounds.len(), r.accepted)
        };
        assert_eq!(run(), run());
    }
}
