//! The run manifest: provenance for one simulator run.
//!
//! Everything nondeterministic about a run — wall-clock start time, elapsed
//! wall time per phase, host info — is quarantined here, under the `"wall"`
//! key, so the trace and metrics sinks can stay byte-identical across runs
//! at the same seed. The deterministic half records what was run (config
//! hash, seed, solver mode, scale, experiment ids, git revision) so a
//! `figures_paper.json` can always be traced back to the exact inputs that
//! produced it.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::jsonio::{write_f64, write_str};

/// FNV-1a 64-bit hash, used to fingerprint configs without serde.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Best-effort git revision: reads `.git/HEAD` (and the ref it points to)
/// without spawning a subprocess. Returns `"unknown"` outside a checkout.
pub fn git_rev() -> String {
    fn read_rev(dir: &std::path::Path) -> Option<String> {
        let head = std::fs::read_to_string(dir.join(".git/HEAD")).ok()?;
        let head = head.trim();
        if let Some(r) = head.strip_prefix("ref: ") {
            if let Ok(sha) = std::fs::read_to_string(dir.join(".git").join(r)) {
                return Some(sha.trim().to_owned());
            }
            // Packed refs fallback.
            let packed = std::fs::read_to_string(dir.join(".git/packed-refs")).ok()?;
            for line in packed.lines() {
                if let Some(sha) = line.strip_suffix(r) {
                    return Some(sha.trim().to_owned());
                }
            }
            None
        } else {
            Some(head.to_owned())
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_default();
    loop {
        if let Some(rev) = read_rev(&dir) {
            return rev;
        }
        if !dir.pop() {
            return "unknown".to_owned();
        }
    }
}

/// Builder for the manifest, accumulated over a run.
#[derive(Debug)]
pub struct ManifestBuilder {
    started: Instant,
    started_unix_ms: u128,
    /// Deterministic provenance fields (sorted on export).
    fields: BTreeMap<String, String>,
    /// Wall-clock elapsed per phase, in call order.
    phases: Vec<(String, f64)>,
}

impl Default for ManifestBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ManifestBuilder {
    /// Start the manifest clock now.
    pub fn new() -> Self {
        ManifestBuilder {
            started: Instant::now(),
            started_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_millis()),
            fields: BTreeMap::new(),
            phases: Vec::new(),
        }
    }

    /// Set a deterministic provenance field (config hash, seed, solver, ...).
    pub fn set(&mut self, key: &str, value: &str) {
        self.fields.insert(key.to_owned(), value.to_owned());
    }

    /// Record `elapsed_ms` of wall time against `phase` (accumulating if the
    /// phase repeats).
    pub fn phase_elapsed(&mut self, phase: &str, elapsed_ms: f64) {
        if let Some(p) = self.phases.iter_mut().find(|(n, _)| n == phase) {
            p.1 += elapsed_ms;
        } else {
            self.phases.push((phase.to_owned(), elapsed_ms));
        }
    }

    /// Render `manifest.json`. Deterministic fields live at the top level;
    /// everything wall-clock sits under `"wall"` so consumers can strip one
    /// key to compare runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (k, v) in &self.fields {
            write_str(&mut out, k);
            out.push(':');
            write_str(&mut out, v);
            out.push(',');
        }
        out.push_str("\"wall\":{\"started_unix_ms\":");
        write_f64(&mut out, self.started_unix_ms as f64);
        out.push_str(",\"elapsed_ms\":");
        write_f64(&mut out, self.started.elapsed().as_secs_f64() * 1e3);
        out.push_str(",\"phases\":{");
        for (i, (name, ms)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push(':');
            write_f64(&mut out, *ms);
        }
        out.push_str("}}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"spider"), fnv1a(b"spiderx"));
        assert_eq!(fnv1a(b"spider"), fnv1a(b"spider"));
    }

    #[test]
    fn manifest_renders_valid_json_with_wall_isolated() {
        let mut m = ManifestBuilder::new();
        m.set("seed", "0x5d1de2");
        m.set("scale", "small");
        m.phase_elapsed("exp:E2", 12.5);
        m.phase_elapsed("exp:E2", 2.5);
        let v = crate::jsonio::parse(&m.to_json()).expect("valid json");
        assert_eq!(v.get("seed").unwrap().as_str(), Some("0x5d1de2"));
        let wall = v.get("wall").expect("wall key");
        let phases = wall.get("phases").unwrap();
        assert_eq!(phases.get("exp:E2").unwrap().as_f64(), Some(15.0));
        // Deterministic half excludes wall: stripping "wall" leaves only
        // the provenance fields.
        assert!(wall.get("started_unix_ms").is_some());
    }

    #[test]
    fn git_rev_finds_this_repo() {
        let rev = git_rev();
        // In the repo this is a 40-char sha; elsewhere "unknown".
        assert!(rev == "unknown" || rev.len() >= 7, "{rev}");
    }
}
