//! File striping across OSTs.
//!
//! Lustre splits a file into stripe-size chunks laid round-robin over
//! `stripe_count` OSTs. The paper's user best practices (§VII) are all layout
//! advice: stripe small files over a single OST (stat cost scales with
//! stripe count), use large stripe-aligned requests, stripe big checkpoint
//! files wide for bandwidth.

use crate::ost::OstId;

/// A file's layout: which OSTs hold it and how it is chunked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeLayout {
    /// Bytes per stripe chunk (Lustre default 1 MiB).
    pub stripe_size: u64,
    /// The OSTs, in round-robin order.
    pub osts: Vec<OstId>,
}

impl StripeLayout {
    /// Layout over the given OSTs with the default 1 MiB stripe size.
    pub fn new(osts: Vec<OstId>) -> Self {
        assert!(!osts.is_empty(), "a layout needs at least one OST");
        StripeLayout {
            stripe_size: 1 << 20,
            osts,
        }
    }

    /// Layout with an explicit stripe size.
    pub fn with_stripe_size(mut self, stripe_size: u64) -> Self {
        assert!(stripe_size > 0);
        self.stripe_size = stripe_size;
        self
    }

    /// Stripe count.
    pub fn stripe_count(&self) -> usize {
        self.osts.len()
    }

    /// The OST holding the byte at `offset`.
    pub fn ost_of_offset(&self, offset: u64) -> OstId {
        let chunk = offset / self.stripe_size;
        self.osts[(chunk % self.osts.len() as u64) as usize]
    }

    /// How many bytes of a `[offset, offset+len)` extent land on each OST of
    /// the layout. Returned parallel to `self.osts`.
    pub fn bytes_per_ost(&self, offset: u64, len: u64) -> Vec<u64> {
        let n = self.osts.len() as u64;
        let mut out = vec![0u64; self.osts.len()];
        if len == 0 {
            return out;
        }
        // Whole chunks between the first and last touched chunk.
        let first_chunk = offset / self.stripe_size;
        let last_chunk = (offset + len - 1) / self.stripe_size;
        for chunk in first_chunk..=last_chunk {
            let chunk_start = chunk * self.stripe_size;
            let chunk_end = chunk_start + self.stripe_size;
            let lo = offset.max(chunk_start);
            let hi = (offset + len).min(chunk_end);
            out[(chunk % n) as usize] += hi - lo;
        }
        out
    }

    /// Number of distinct OSTs a `stat` of this file must glimpse (every
    /// OST holding data) — the §VII stat-cost mechanism.
    pub fn stat_fanout(&self, file_size: u64) -> usize {
        if file_size == 0 {
            return 1; // size-0 files still glimpse their first object
        }
        let chunks = file_size.div_ceil(self.stripe_size);
        (chunks as usize).min(self.osts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(n: u32) -> StripeLayout {
        StripeLayout::new((0..n).map(OstId).collect())
    }

    #[test]
    fn round_robin_mapping() {
        let l = layout(4);
        assert_eq!(l.ost_of_offset(0), OstId(0));
        assert_eq!(l.ost_of_offset((1 << 20) - 1), OstId(0));
        assert_eq!(l.ost_of_offset(1 << 20), OstId(1));
        assert_eq!(l.ost_of_offset(4 << 20), OstId(0), "wraps around");
    }

    #[test]
    fn bytes_per_ost_even_for_aligned_extent() {
        let l = layout(4);
        let per = l.bytes_per_ost(0, 8 << 20);
        assert_eq!(per, vec![2 << 20; 4]);
        assert_eq!(per.iter().sum::<u64>(), 8 << 20);
    }

    #[test]
    fn bytes_per_ost_handles_unaligned_extents() {
        let l = layout(2);
        // 1.5 MiB starting at 0.5 MiB: chunk0 gets [0.5,1.0) = 0.5 MiB on
        // OST0; chunk1 = [1.0,2.0) = 1 MiB on OST1.
        let per = l.bytes_per_ost(512 << 10, 3 << 19);
        assert_eq!(per[0], 512 << 10);
        assert_eq!(per[1], 1 << 20);
        assert_eq!(per.iter().sum::<u64>(), 3 << 19);
    }

    #[test]
    fn zero_length_extent_is_empty() {
        let l = layout(3);
        assert_eq!(l.bytes_per_ost(42, 0), vec![0, 0, 0]);
    }

    #[test]
    fn custom_stripe_size() {
        let l = layout(2).with_stripe_size(4096);
        assert_eq!(l.ost_of_offset(4095), OstId(0));
        assert_eq!(l.ost_of_offset(4096), OstId(1));
    }

    #[test]
    fn stat_fanout_scales_with_stripes_used() {
        let l = layout(8);
        assert_eq!(l.stat_fanout(0), 1);
        assert_eq!(l.stat_fanout(100), 1, "small file touches one OST");
        assert_eq!(l.stat_fanout(3 << 20), 3);
        assert_eq!(l.stat_fanout(100 << 20), 8, "capped at stripe count");
        // Single-stripe layout: stat touches exactly one OST regardless of
        // size — the §VII best practice for small files.
        assert_eq!(layout(1).stat_fanout(100 << 20), 1);
    }

    #[test]
    #[should_panic(expected = "at least one OST")]
    fn empty_layout_rejected() {
        let _ = StripeLayout::new(vec![]);
    }
}
