//! E12 — §VI-C / LL19: scalable tools vs stock Linux tools.
//!
//! Two comparisons:
//!
//! - **`du` vs LustreDU**: the metadata cost of a client-side `du` over a
//!   populated project tree (one MDS stat per inode plus per-stripe OST
//!   glimpses) against the free query into the daily server-side database.
//! - **serial vs parallel tree tools**: `find`/walk and the `dcp` manifest
//!   phase, serial vs rayon work-stealing — real wall-clock on this
//!   machine.

// spider-lint: allow(wall-clock, reason = "E12b reports measured tool wall time, labelled 'this machine'")
use std::time::Instant;

use spider_pfs::layout::StripeLayout;
use spider_pfs::mds::MdsCluster;
use spider_pfs::namespace::{FileMeta, Namespace};
use spider_pfs::ost::OstId;
use spider_simkit::SimTime;
use spider_tools::lustredu::{client_du_cost, DuDatabase};
use spider_tools::ptools::{dfind, dwalk, find_serial, walk_serial};

use crate::config::Scale;
use crate::report::Table;

fn build_tree(dirs: usize, files_per_dir: usize) -> Namespace {
    let mut ns = Namespace::new();
    for d in 0..dirs {
        let dir = ns
            .mkdir_p(&format!("/proj/run{d}"))
            .expect("/proj tree paths are well-formed");
        for f in 0..files_per_dir {
            ns.create_file(
                dir,
                &format!("f{f:06}"),
                FileMeta {
                    size: ((f % 100) as u64 + 1) << 20,
                    atime: SimTime::ZERO,
                    mtime: SimTime::ZERO,
                    ctime: SimTime::ZERO,
                    stripe: StripeLayout::new((0..4).map(|s| OstId((f as u32 + s) % 64)).collect()),
                    project: d as u32,
                },
            )
            .expect("file names are unique within their run dir");
        }
    }
    ns
}

/// Run E12.
pub fn run(scale: Scale) -> Vec<Table> {
    let (dirs, files) = match scale {
        Scale::Paper => (256, 2_000),
        Scale::Small => (64, 500),
    };
    let ns = build_tree(dirs, files);
    let mds = MdsCluster::single();

    // du vs LustreDU.
    let mut du_table = Table::new(
        "E12a: client-side du vs LustreDU (server-side daily aggregation)",
        &[
            "tool",
            "MDS stat ops",
            "OST glimpses",
            "MDS busy (s)",
            "answer",
        ],
    );
    let root = ns.lookup("/proj").expect("tree was built under /proj");
    let cost = client_du_cost(&ns, root, &mds, 25_000.0);
    du_table.row(vec![
        "client du".into(),
        cost.mds_stats.to_string(),
        cost.ost_glimpses.to_string(),
        format!("{:.1}", cost.duration.as_secs_f64()),
        ns.du(root).to_string(),
    ]);
    let db = DuDatabase::build(&ns, SimTime::ZERO);
    du_table.row(vec![
        "LustreDU query".into(),
        "0".into(),
        "0".into(),
        "0.0".into(),
        db.query(root)
            .expect("DuDatabase indexes every directory")
            .to_string(),
    ]);

    // Serial vs parallel tools (real time, best of 3).
    let mut tool_table = Table::new(
        "E12b: serial vs parallel tree tools (wall-clock, this machine)",
        &["tool", "serial ms", "parallel ms", "speedup", "result"],
    );
    let best_of = |f: &dyn Fn() -> u64| -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut out = 0;
        for _ in 0..3 {
            // spider-lint: allow(wall-clock, reason = "E12b reports measured tool wall time, labelled 'this machine'")
            let t = Instant::now();
            out = f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        (best, out)
    };
    let (ser_ms, ser_files) = best_of(&|| walk_serial(&ns, ns.root()).files);
    let (par_ms, par_files) = best_of(&|| dwalk(&ns, ns.root()).files);
    assert_eq!(ser_files, par_files);
    tool_table.row(vec![
        "walk (find .)".into(),
        format!("{ser_ms:.1}"),
        format!("{par_ms:.1}"),
        format!("{:.2}x", ser_ms / par_ms),
        format!("{ser_files} files"),
    ]);
    let pred = |n: &spider_pfs::namespace::Inode| n.file().is_some_and(|m| m.size > 90 << 20);
    let (fser_ms, fser) = best_of(&|| find_serial(&ns, ns.root(), pred).len() as u64);
    let (fpar_ms, fpar) = best_of(&|| dfind(&ns, ns.root(), pred).len() as u64);
    assert_eq!(fser, fpar);
    tool_table.row(vec![
        "find (size>90MiB)".into(),
        format!("{fser_ms:.1}"),
        format!("{fpar_ms:.1}"),
        format!("{:.2}x", fser_ms / fpar_ms),
        format!("{fser} matches"),
    ]);

    super::trace::experiment("E12", 1, 2);
    vec![du_table, tool_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12a_lustredu_answers_match_and_cost_nothing() {
        let tables = run(Scale::Small);
        let du = &tables[0];
        assert_eq!(du.rows[0][4], du.rows[1][4], "answers agree");
        assert_eq!(du.rows[1][1], "0", "zero MDS ops for the query");
        let stats: u64 = du.rows[0][1].parse().unwrap();
        assert!(stats > 30_000, "client du stats every inode: {stats}");
    }

    #[test]
    fn e12b_parallel_tools_agree_with_serial() {
        let tables = run(Scale::Small);
        let tools = &tables[1];
        assert_eq!(tools.len(), 2);
        for row in &tools.rows {
            let speedup: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(speedup > 0.2, "sanity: {row:?}");
        }
    }
}
