//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the rayon API the workspace uses: `par_iter()` over slices
//! and `Vec`s with `map` / `collect` / `reduce` / `sum`. Parallelism is real
//! — chunks are distributed over `std::thread::scope` threads — but there is
//! no work stealing. A global thread budget keeps *nested* parallel calls
//! (e.g. recursive tree walks) from spawning unbounded threads: once the
//! budget is exhausted, inner calls degrade to sequential execution, which
//! is exactly the grain coarsening a work-stealing pool converges to.
//!
//! Ordering guarantee (matches rayon): `collect` preserves input order, and
//! `reduce` combines per-chunk partials left-to-right, so integer reductions
//! are deterministic regardless of how many threads participate.

use std::sync::atomic::{AtomicIsize, Ordering};

/// Worker threads still available to *additional* parallel calls. The main
/// thread always works, so the budget is `available_parallelism - 1`.
static SPARE_THREADS: AtomicIsize = AtomicIsize::new(-1);

fn acquire_workers(wanted: usize) -> usize {
    if SPARE_THREADS.load(Ordering::Relaxed) == -1 {
        let par = std::thread::available_parallelism()
            .map(|n| n.get() as isize)
            .unwrap_or(4);
        // Racy double-init is fine: both writers store the same value.
        SPARE_THREADS.store(par - 1, Ordering::Relaxed);
    }
    let mut granted = 0;
    while granted < wanted {
        let cur = SPARE_THREADS.load(Ordering::Relaxed);
        if cur <= 0 {
            break;
        }
        if SPARE_THREADS
            .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            granted += 1;
        }
    }
    granted
}

fn release_workers(n: usize) {
    SPARE_THREADS.fetch_add(n as isize, Ordering::Relaxed);
}

/// Force the spare-thread budget (the analogue of rayon's
/// `ThreadPoolBuilder::num_threads`, for tests and benches): `0` makes every
/// parallel call run sequentially; `n` lets up to `n` helper threads spawn
/// even on machines reporting fewer cores. Deterministic algorithms must
/// produce bit-identical output either way — that is exactly what
/// thread-count differential tests use this hook to prove. Call it only
/// while no parallel work is in flight; in-flight calls release workers back
/// into whatever budget is current.
pub fn set_spare_thread_budget(spare: usize) {
    SPARE_THREADS.store(spare as isize, Ordering::Relaxed);
}

/// Parallel ordered map: `out[i] = f(&items[i])`.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(f).collect();
    }
    let extra = acquire_workers((n - 1).min(64));
    if extra == 0 {
        return items.iter().map(f).collect();
    }
    let threads = extra + 1;
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut slots: Vec<&mut [Option<R>]> = out.chunks_mut(chunk).collect();
    let chunks: Vec<&'a [T]> = items.chunks(chunk).collect();
    std::thread::scope(|scope| {
        // The main thread takes the first chunk; helpers take the rest.
        let (first_slot, rest_slots) = slots.split_at_mut(1);
        let mut helpers = Vec::new();
        for (slot, work) in rest_slots.iter_mut().zip(&chunks[1..]) {
            let work: &'a [T] = work;
            let slot: &mut [Option<R>] = slot;
            helpers.push(scope.spawn(move || {
                for (s, item) in slot.iter_mut().zip(work) {
                    *s = Some(f(item));
                }
            }));
        }
        for (s, item) in first_slot[0].iter_mut().zip(chunks[0]) {
            *s = Some(f(item));
        }
        for h in helpers {
            h.join().expect("parallel worker panicked");
        }
    });
    release_workers(extra);
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// Parallel ordered map over mutable references: `out[i] = f(&mut items[i])`.
fn parallel_map_mut<'a, T, R, F>(items: &'a mut [T], f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&'a mut T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let extra = acquire_workers((n - 1).min(64));
    if extra == 0 {
        return items.iter_mut().map(f).collect();
    }
    let threads = extra + 1;
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut slots: Vec<&mut [Option<R>]> = out.chunks_mut(chunk).collect();
    let chunks: Vec<&'a mut [T]> = items.chunks_mut(chunk).collect();
    std::thread::scope(|scope| {
        let mut chunks = chunks;
        let first_work = chunks.remove(0);
        let (first_slot, rest_slots) = slots.split_at_mut(1);
        let mut helpers = Vec::new();
        for (slot, work) in rest_slots.iter_mut().zip(chunks) {
            let slot: &mut [Option<R>] = slot;
            helpers.push(scope.spawn(move || {
                for (s, item) in slot.iter_mut().zip(work) {
                    *s = Some(f(item));
                }
            }));
        }
        for (s, item) in first_slot[0].iter_mut().zip(first_work) {
            *s = Some(f(item));
        }
        for h in helpers {
            h.join().expect("parallel worker panicked");
        }
    });
    release_workers(extra);
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;
    /// Start a parallel pipeline over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing conversion into a mutable parallel iterator (`.par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type yielded by mutable reference.
    type Item: Send + 'a;
    /// Start a parallel pipeline over `&mut self`.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// A parallel iterator over mutable slice elements.
#[derive(Debug)]
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Apply `f` to every element in parallel, mutably.
    pub fn map<R, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        R: Send,
        F: Fn(&'a mut T) -> R + Sync,
    {
        ParMapMut {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIterMut::map`]: a mapped mutable parallel pipeline.
#[derive(Debug)]
pub struct ParMapMut<'a, T, F> {
    items: &'a mut [T],
    f: F,
}

impl<'a, T, R, F> ParMapMut<'a, T, F>
where
    T: Send,
    R: Send,
    F: Fn(&'a mut T) -> R + Sync,
{
    /// Collect mapped values in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_par_vec(parallel_map_mut(self.items, &self.f))
    }

    /// Sum mapped values.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        parallel_map_mut(self.items, &self.f).into_iter().sum()
    }
}

/// A parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]: a mapped parallel pipeline.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    fn run(self) -> Vec<R> {
        parallel_map(self.items, &self.f)
    }

    /// Collect mapped values in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_par_vec(self.run())
    }

    /// Fold mapped values with `op`, starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.run().into_iter().fold(identity(), op)
    }

    /// Sum mapped values.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        self.run().into_iter().sum()
    }
}

/// Collections constructible from an ordered parallel pipeline.
pub trait FromParallelIterator<T> {
    /// Build from the already-ordered mapped values.
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

/// The traits user code imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_sequential() {
        let xs: Vec<u64> = (1..=1000).collect();
        let total = xs.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn nested_parallelism_degrades_gracefully() {
        let outer: Vec<u64> = (0..64).collect();
        let sums: Vec<u64> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<u64> = (0..64).collect();
                inner.par_iter().map(|&i| o + i).sum::<u64>()
            })
            .collect();
        let expect: Vec<u64> = (0..64).map(|o| (0..64).map(|i| o + i).sum()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn map_mut_collect_mutates_in_place_and_preserves_order() {
        let mut xs: Vec<u64> = (0..5_000).collect();
        let ys: Vec<u64> = xs
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x * 10
            })
            .collect();
        assert_eq!(xs, (1..=5_000).collect::<Vec<_>>());
        assert_eq!(ys, (1..=5_000).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sum_works() {
        let xs: Vec<u32> = (0..100).collect();
        let s: u32 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 4950);
    }
}
