//! Deep fixture: the deep leaf rules — a relaxed atomic load in a file
//! that emits deterministic output, a parallel collect into a hash
//! collection, and a float fold in a parallel region.

/// Leaf: relaxed load co-resident with an output sink (`emit` below).
pub fn obs_enabled() -> bool {
    FLAG.load(Ordering::Relaxed)
}

/// The sink that puts this file on an output path.
pub fn emit(t: &mut Table, v: Vec<f64>) {
    t.row(v);
}

/// Leaf: parallel collect into a hash collection.
pub fn index(v: &[u64]) -> Vec<u64> {
    let s: HashSet<u64> = v.par_iter().map(|x| *x).collect();
    s.into_iter().collect()
}

/// Leaf: float accumulation via `fold` under rayon scheduling order.
pub fn accum(v: &[f64]) -> f64 {
    let parts = v.par_iter().fold(|| 0.0, |a, b| a + b);
    parts.first()
}
