//! LustreDU — server-side disk-usage accounting (§VI-C).
//!
//! "Standard Linux tools do not work well at scale. A good example is the
//! standard Unix `du` command. `du` imposes a heavy load on the Lustre MDS
//! when run at this scale. Therefore we developed the LustreDU tool, which
//! gathers disk usage metadata from the Lustre servers once per day."
//!
//! Two sides are modeled: the *cost* of a client-side `du` (one stat per
//! inode against the MDS, plus per-stripe OST glimpses) and the LustreDU
//! [`DuDatabase`] built server-side once per day and queried for free.

use std::collections::BTreeMap;

use spider_pfs::mds::{MdsCluster, MdsOp};
use spider_pfs::namespace::{InodeId, Namespace};
use spider_simkit::{SimDuration, SimTime};

/// Cost of running client-side `du` over a subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct DuCost {
    /// MDS stat operations issued (one per inode).
    pub mds_stats: u64,
    /// OST glimpse RPCs issued (one per stripe object).
    pub ost_glimpses: u64,
    /// Readdir operations (one per directory).
    pub readdirs: u64,
    /// MDS utilization while the du runs at `target_rate` stats/s.
    pub mds_utilization: f64,
    /// Wall-clock lower bound for the scan.
    pub duration: SimDuration,
}

/// Compute the cost of a client-side `du` of `root`, issuing stats at
/// `stat_rate` ops/s against `mds`.
pub fn client_du_cost(ns: &Namespace, root: InodeId, mds: &MdsCluster, stat_rate: f64) -> DuCost {
    let mut mds_stats = 0u64;
    let mut ost_glimpses = 0u64;
    let mut readdirs = 0u64;
    ns.visit(root, |node| {
        mds_stats += 1;
        if let Some(meta) = node.file() {
            ost_glimpses += meta.stripe.stat_fanout(meta.size) as u64;
        } else {
            readdirs += 1;
        }
    });
    let load = vec![
        (MdsOp::Stat, stat_rate),
        (
            MdsOp::Readdir,
            stat_rate * readdirs as f64 / mds_stats.max(1) as f64,
        ),
    ];
    DuCost {
        mds_stats,
        ost_glimpses,
        readdirs,
        mds_utilization: mds.utilization(&load),
        duration: SimDuration::from_secs_f64(mds_stats as f64 / stat_rate),
    }
}

/// The LustreDU database: per-directory byte totals, refreshed daily from
/// the servers without touching the MDS request path.
#[derive(Debug, Clone)]
pub struct DuDatabase {
    /// Aggregated bytes per directory inode (recursive).
    totals: BTreeMap<InodeId, u64>,
    /// When the last refresh ran.
    pub refreshed_at: SimTime,
}

impl DuDatabase {
    /// Build (or rebuild) the database by scanning server-side tables —
    /// a single recursive pass, performed off the client path.
    pub fn build(ns: &Namespace, now: SimTime) -> DuDatabase {
        let mut totals = BTreeMap::new();
        Self::build_rec(ns, ns.root(), &mut totals);
        DuDatabase {
            totals,
            refreshed_at: now,
        }
    }

    fn build_rec(ns: &Namespace, dir: InodeId, totals: &mut BTreeMap<InodeId, u64>) -> u64 {
        let mut sum = 0u64;
        if let Ok(children) = ns.children(dir) {
            for &child in children.values() {
                let node = ns.get(child);
                if node.is_dir() {
                    sum += Self::build_rec(ns, child, totals);
                } else if let Some(meta) = node.file() {
                    sum += meta.size;
                }
            }
        }
        totals.insert(dir, sum);
        sum
    }

    /// Query a directory's recursive usage. O(log n), zero MDS load.
    pub fn query(&self, dir: InodeId) -> Option<u64> {
        self.totals.get(&dir).copied()
    }

    /// Number of directories indexed.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// True when no directories are indexed.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// Is the answer stale relative to the daily refresh cadence?
    pub fn is_stale(&self, now: SimTime) -> bool {
        now.since(self.refreshed_at) > SimDuration::from_days(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_pfs::layout::StripeLayout;
    use spider_pfs::namespace::FileMeta;
    use spider_pfs::ost::OstId;

    fn build_tree(files_per_dir: usize, dirs: usize, stripe_count: u32) -> Namespace {
        let mut ns = Namespace::new();
        for d in 0..dirs {
            let dir = ns.mkdir_p(&format!("/proj{d}")).unwrap();
            for f in 0..files_per_dir {
                ns.create_file(
                    dir,
                    &format!("f{f}"),
                    FileMeta {
                        size: 10 << 20,
                        atime: SimTime::ZERO,
                        mtime: SimTime::ZERO,
                        ctime: SimTime::ZERO,
                        stripe: StripeLayout::new((0..stripe_count).map(OstId).collect()),
                        project: d as u32,
                    },
                )
                .unwrap();
            }
        }
        ns
    }

    #[test]
    fn client_du_cost_counts_every_inode() {
        let ns = build_tree(100, 10, 4);
        let mds = MdsCluster::single();
        let cost = client_du_cost(&ns, ns.root(), &mds, 1_000.0);
        // 1 root + 10 dirs + 1000 files.
        assert_eq!(cost.mds_stats, 1_011);
        // 10 MiB files on 4-way stripes glimpse 4 OSTs each.
        assert_eq!(cost.ost_glimpses, 4_000);
        assert_eq!(cost.readdirs, 11);
        assert!(cost.duration.as_secs_f64() > 1.0);
    }

    #[test]
    fn du_at_scale_hammers_the_mds() {
        // LL19's premise: a du storm consumes a large share of the MDS.
        let ns = build_tree(1_000, 20, 1);
        let mds = MdsCluster::single();
        // A user running du as fast as the MDS allows (28k stats/s): the
        // MDS is effectively saturated for the duration.
        let cost = client_du_cost(&ns, ns.root(), &mds, 25_000.0);
        assert!(cost.mds_utilization > 0.85, "{}", cost.mds_utilization);
    }

    #[test]
    fn single_stripe_small_files_glimpse_once() {
        // The §VII best practice: stripe-1 small files keep stat cheap.
        let wide = build_tree(100, 1, 8);
        let narrow = build_tree(100, 1, 1);
        let mds = MdsCluster::single();
        let cw = client_du_cost(&wide, wide.root(), &mds, 1_000.0);
        let cn = client_du_cost(&narrow, narrow.root(), &mds, 1_000.0);
        assert_eq!(cw.ost_glimpses, 800);
        assert_eq!(cn.ost_glimpses, 100);
    }

    #[test]
    fn database_matches_live_du_and_costs_nothing_to_query() {
        let ns = build_tree(50, 4, 2);
        let db = DuDatabase::build(&ns, SimTime::ZERO);
        assert_eq!(db.len(), 5, "root + 4 project dirs");
        let p2 = ns.lookup("/proj2").unwrap();
        assert_eq!(db.query(p2), Some(ns.du(p2)));
        assert_eq!(db.query(ns.root()), Some(ns.total_bytes()));
        // Unknown directory -> None (files are not indexed).
        let f = ns.lookup("/proj0/f0").unwrap();
        assert_eq!(db.query(f), None);
    }

    #[test]
    fn staleness_follows_daily_cadence() {
        let ns = build_tree(1, 1, 1);
        let db = DuDatabase::build(&ns, SimTime::ZERO);
        assert!(!db.is_stale(SimTime::ZERO + SimDuration::from_hours(23)));
        assert!(db.is_stale(SimTime::ZERO + SimDuration::from_hours(25)));
    }
}
