use spider_obs::Registry;
use spider_simkit::hist::Binning;

#[test]
fn linear_binning_with_ratio_two_survives_round_trip() {
    let mut r = Registry::new();
    // Linear bins [1,2),[2,3),...: first two edges 1 and 2 (ratio 2).
    r.hist_record_with(
        "lat",
        4.5,
        Binning::Linear {
            lo: 1.0,
            hi: 11.0,
            n: 10,
        },
    );
    let text = r.to_jsonl();
    eprintln!("JSONL: {text}");
    assert!(
        text.contains("\"type\":\"linear\""),
        "binning misdetected: {text}"
    );
    let back = Registry::from_jsonl(&text).unwrap();
    let mut orig = Registry::new();
    orig.hist_record_with(
        "lat",
        4.5,
        Binning::Linear {
            lo: 1.0,
            hi: 11.0,
            n: 10,
        },
    );
    orig.merge(&back);
}
