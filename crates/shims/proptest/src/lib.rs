//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / `vec` / `option` / `select`
//! strategies, `any::<T>()`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing cases
//! are *not shrunk* — the panic message reports the test name and case
//! number, and the per-test RNG stream is deterministic (seeded from the
//! test's name), so failures replay exactly under `cargo test`.

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategy implementations.

    use crate::test_runner::{RngExt, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values for one test parameter.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if hi < <$t>::MAX {
                        rng.random_range(lo..hi + 1)
                    } else if lo > <$t>::MIN {
                        // Shift down one to keep the span representable.
                        rng.random_range(lo - 1..hi) + 1
                    } else {
                        rng.random()
                    }
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Strategy for a value that is always the same (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::{RngExt, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.random()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::{RngExt, TestRng};
    use std::ops::Range;

    /// Acceptable size specifications for [`vec`].
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::{RngExt, TestRng};

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, mirroring proptest's default weight.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use crate::strategy::Strategy;
    use crate::test_runner::{RngExt, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Choose uniformly among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.random_range(0..self.0.len())].clone()
        }
    }
}

pub mod test_runner {
    //! Configuration and the per-test RNG.

    pub use rand::{RngCore, RngExt, SeedableRng};

    /// Number of random cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG for one property test, seeded from the test name.
    #[derive(Debug)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// RNG whose stream depends only on `name` — reruns reproduce.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Everything a property-test module needs, mirroring proptest's prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `cases` times with freshly sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __pt_cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __pt_case in 0..__pt_cfg.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut __pt_rng),)+
                );
                let __pt_run = move || -> () { $body };
                let __pt_outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__pt_run),
                );
                if let Err(err) = __pt_outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed",
                        __pt_case + 1,
                        __pt_cfg.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(err);
                }
            }
        }
    )*};
}

/// Assert inside a property body (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..9), xs in prop::collection::vec(0.0f64..1.0, 1..8)) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn options_select_any(o in prop::option::of(1u8..3), pick in prop::sample::select(vec![2u64, 4, 8]), s in any::<u64>()) {
            if let Some(v) = o {
                prop_assert!((1..3).contains(&v));
            }
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
            prop_assume!(s != 0);
            prop_assert_ne!(s, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
