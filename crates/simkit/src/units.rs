//! Byte and bandwidth quantities.
//!
//! The paper mixes decimal marketing units (a "2 TB" disk, "1 TB/s" file
//! system) with binary I/O units (1 MB = 2^20-byte Lustre RPCs, 16 KB small
//! requests). Both families are provided; the I/O path consistently uses the
//! binary constants ([`KIB`], [`MIB`], ...) while capacity planning uses the
//! decimal ones ([`TB`], [`PB`], ...).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// 1 kilobyte (decimal).
pub const KB: u64 = 1_000;
/// 1 megabyte (decimal).
pub const MB: u64 = 1_000_000;
/// 1 gigabyte (decimal).
pub const GB: u64 = 1_000_000_000;
/// 1 terabyte (decimal).
pub const TB: u64 = 1_000_000_000_000;
/// 1 petabyte (decimal).
pub const PB: u64 = 1_000_000_000_000_000;

/// 1 kibibyte.
pub const KIB: u64 = 1 << 10;
/// 1 mebibyte — the canonical Lustre RPC / large-request size in the paper.
pub const MIB: u64 = 1 << 20;
/// 1 gibibyte.
pub const GIB: u64 = 1 << 30;
/// 1 tebibyte.
pub const TIB: u64 = 1 << 40;

/// Format a byte count with a human-readable binary suffix.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= TIB {
        format!("{:.2} TiB", b / TIB as f64)
    } else if bytes >= GIB {
        format!("{:.2} GiB", b / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", b / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", b / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// A data rate in bytes per second.
///
/// Stored as `f64` because rates are the product of analytic models (disk
/// service curves, max-min fair shares) rather than counters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// From bytes per second.
    pub fn bytes_per_sec(b: f64) -> Self {
        Bandwidth(b)
    }

    /// From decimal megabytes per second (disk vendor convention).
    pub fn mb_per_sec(mb: f64) -> Self {
        Bandwidth(mb * MB as f64)
    }

    /// From decimal gigabytes per second (file-system-level convention).
    pub fn gb_per_sec(gb: f64) -> Self {
        Bandwidth(gb * GB as f64)
    }

    /// From decimal terabytes per second.
    pub fn tb_per_sec(tb: f64) -> Self {
        Bandwidth(tb * TB as f64)
    }

    /// Rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Rate in decimal MB/s.
    pub fn as_mb_per_sec(self) -> f64 {
        self.0 / MB as f64
    }

    /// Rate in decimal GB/s.
    pub fn as_gb_per_sec(self) -> f64 {
        self.0 / GB as f64
    }

    /// Rate in decimal TB/s.
    pub fn as_tb_per_sec(self) -> f64 {
        self.0 / TB as f64
    }

    /// Time to move `bytes` at this rate.
    ///
    /// Returns [`crate::SimDuration`] saturated at the maximum horizon when
    /// the rate is zero.
    pub fn time_for(self, bytes: u64) -> crate::SimDuration {
        if self.0 <= 0.0 {
            return crate::SimDuration(u64::MAX);
        }
        crate::SimDuration::from_secs_f64(bytes as f64 / self.0)
    }

    /// Bytes moved over `d` at this rate.
    pub fn bytes_over(self, d: crate::SimDuration) -> f64 {
        self.0 * d.as_secs_f64()
    }

    /// The smaller of two rates (bottleneck composition).
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// The larger of two rates.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }

    /// True when the rate is exactly zero (or negative, which models never
    /// produce but float arithmetic can graze).
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        Bandwidth(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= TB as f64 {
            write!(f, "{:.2} TB/s", b / TB as f64)
        } else if b >= GB as f64 {
            write!(f, "{:.2} GB/s", b / GB as f64)
        } else if b >= MB as f64 {
            write!(f, "{:.2} MB/s", b / MB as f64)
        } else if b >= KB as f64 {
            write!(f, "{:.2} KB/s", b / KB as f64)
        } else {
            write!(f, "{b:.2} B/s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn unit_constants() {
        assert_eq!(MIB, 1_048_576);
        assert_eq!(TB / GB, 1000);
        assert_eq!(TIB / GIB, 1024);
    }

    #[test]
    fn bandwidth_conversions() {
        let bw = Bandwidth::gb_per_sec(1.0);
        assert!((bw.as_mb_per_sec() - 1000.0).abs() < 1e-9);
        assert!((Bandwidth::tb_per_sec(1.0).as_gb_per_sec() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn time_for_bytes() {
        let bw = Bandwidth::mb_per_sec(100.0);
        let t = bw.time_for(50 * MB);
        assert!((t.as_secs_f64() - 0.5).abs() < 1e-9);
        // Zero bandwidth never completes.
        assert_eq!(Bandwidth::ZERO.time_for(1), SimDuration(u64::MAX));
    }

    #[test]
    fn bytes_over_duration() {
        let bw = Bandwidth::gb_per_sec(2.0);
        let moved = bw.bytes_over(SimDuration::from_secs(3));
        assert!((moved - 6e9).abs() < 1.0);
    }

    #[test]
    fn arithmetic_and_bottleneck() {
        let a = Bandwidth::gb_per_sec(1.0);
        let b = Bandwidth::gb_per_sec(2.0);
        assert_eq!((a + b).as_gb_per_sec().round(), 3.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        // Subtraction floors at zero: a share can never go negative.
        assert!((a - b).is_zero());
        let total: Bandwidth = [a, b, a].into_iter().sum();
        assert!((total.as_gb_per_sec() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Bandwidth::tb_per_sec(1.0).to_string(), "1.00 TB/s");
        assert_eq!(Bandwidth::gb_per_sec(240.0).to_string(), "240.00 GB/s");
        assert_eq!(Bandwidth::mb_per_sec(140.0).to_string(), "140.00 MB/s");
        assert_eq!(fmt_bytes(32 * TIB), "32.00 TiB");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(MIB), "1.00 MiB");
    }
}
