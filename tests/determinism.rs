//! Whole-stack determinism: identical seeds reproduce identical results
//! through every layer — the property that makes the reproduction harness
//! trustworthy.

use spider::core::config::Scale;
use spider::core::experiments::registry;

#[test]
fn all_experiments_are_bitwise_reproducible() {
    // Run the registry twice; every rendered cell must match. E12 measures
    // real wall-clock (machine-dependent), so its timing columns are
    // excluded.
    let run_once = || -> Vec<(String, Vec<String>)> {
        registry()
            .into_iter()
            .map(|e| {
                let mut cells = Vec::new();
                for t in (e.run)(Scale::Small) {
                    for (ri, row) in t.rows.iter().enumerate() {
                        for (ci, cell) in row.iter().enumerate() {
                            // E12b columns 1..4 are wall-clock timings.
                            if e.id == "E12"
                                && t.title.contains("wall-clock")
                                && (1..4).contains(&ci)
                            {
                                continue;
                            }
                            cells.push(format!("{}:{}:{}:{}", t.title, ri, ci, cell));
                        }
                    }
                }
                (e.id.to_owned(), cells)
            })
            .collect()
    };
    let a = run_once();
    let b = run_once();
    for ((id_a, cells_a), (_, cells_b)) in a.iter().zip(&b) {
        assert_eq!(cells_a, cells_b, "{id_a} is not reproducible");
    }
}

#[test]
fn incremental_sessions_are_byte_stable() {
    // The same churn script replayed on a fresh session must reproduce
    // every intermediate rate vector bit for bit — including the solves
    // answered from the fixed-point memo.
    use spider::net::maxmin::{FlowSpec, MaxMinProblem};
    use spider::net::SolveSession;
    let script = || -> Vec<u64> {
        let mut p = MaxMinProblem::new();
        let res: Vec<_> = (0..6)
            .map(|i| p.add_resource(40.0 + f64::from(i)))
            .collect();
        let mut s = SolveSession::new(p);
        let mut bits = Vec::new();
        let mut ids = Vec::new();
        for k in 0..20u32 {
            let path = vec![res[k as usize % 6], res[(k as usize + 2) % 6]];
            let spec = FlowSpec::new(path)
                .with_cap(3.0 + f64::from(k % 5))
                .with_weight(1.0 + f64::from(k % 3));
            ids.push(s.add_flow(&spec));
            if k % 4 == 3 {
                s.remove_flow(ids[(k as usize) / 2]);
            }
            if k % 5 == 2 {
                s.update_weight(*ids.last().expect("just pushed"), 2.5);
            }
            bits.extend(s.solve().iter().map(|r| r.to_bits()));
        }
        bits
    };
    assert_eq!(script(), script());
}

#[test]
fn event_driven_timestep_is_byte_stable() {
    use spider::core::center::Center;
    use spider::core::config::CenterConfig;
    use spider::core::timestep::{run_timestep, Job, TimestepConfig};
    use spider::prelude::*;
    let run_once = || {
        let center = Center::build(CenterConfig::small());
        let jobs: Vec<Job> = (0..12)
            .map(|k| Job {
                fs: (k % 2) as usize,
                clients: 8 + k % 3,
                bytes_per_client: 1 << 30,
                transfer_size: MIB,
                start: SimTime::ZERO + SimDuration::from_secs_f64(f64::from(k) * 7.25),
                write: true,
                optimal_placement: false,
            })
            .collect();
        let r = run_timestep(&center, &jobs, &TimestepConfig::default());
        (r.completions.clone(), r.bytes_moved.clone(), r.solves)
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn sharded_pdes_matches_its_sequential_oracles_bitwise() {
    // Layer 1 — rpcsim: the one-shard-per-OST interference run against the
    // independent single-engine implementation. Both fold completions
    // through the same canonical (done, index) sort, so every Welford
    // intermediate must agree bit for bit.
    use spider::core::rpcsim::{run_interference, run_interference_sharded};
    use spider::prelude::*;
    use spider::workload::generator::{generate_trace, merge_traces};
    use spider::workload::spec::StreamSpec;

    let center = spider::core::Center::build(spider::core::config::CenterConfig::small());
    let osts = &center.filesystems[0].osts;
    let mut rng = SimRng::seed_from_u64(11);
    let traces = (0..12)
        .map(|c| {
            let mut child = rng.fork(c as u64);
            generate_trace(
                &StreamSpec::analytics_read(),
                c,
                SimDuration::from_secs(120),
                &mut child,
            )
        })
        .collect();
    let trace = merge_traces(traces);
    let horizon = SimDuration::from_secs(90);
    let seq = run_interference(osts, &trace, horizon);
    let (shd, stats) = run_interference_sharded(osts, &trace, horizon);
    assert_eq!(stats.shards, osts.len());
    assert_eq!(seq.reads.completed, shd.reads.completed);
    assert_eq!(seq.truncated, shd.truncated);
    assert_eq!(
        seq.reads.latency.mean().to_bits(),
        shd.reads.latency.mean().to_bits()
    );
    assert_eq!(
        seq.reads.latency_percentile(0.99).to_bits(),
        shd.reads.latency_percentile(0.99).to_bits()
    );

    // Layer 2 — the E8d federation storm: epoch-parallel run vs the global
    // (time, shard)-order oracle, with real cross-shard traffic in flight.
    use spider::core::experiments::e08_namespaces::federation_storm;
    let par = federation_storm(6, 600, 0.2, 99).run();
    let orc = federation_storm(6, 600, 0.2, 99).run_sequential();
    assert!(par.stats.cross_messages > 0, "storm must cross shards");
    assert_eq!(par.stats.cross_messages, orc.stats.cross_messages);
    for (p, s) in par.outs.iter().zip(&orc.outs) {
        assert_eq!(p.local_ops, s.local_ops);
        assert_eq!(p.remote_ops, s.remote_ops);
        assert_eq!(p.latency.mean().to_bits(), s.latency.mean().to_bits());
        assert_eq!(
            p.latency.variance().to_bits(),
            s.latency.variance().to_bits()
        );
    }
}

#[test]
fn center_construction_is_seed_stable() {
    use spider::core::center::Center;
    use spider::core::config::CenterConfig;
    let fingerprint = |c: &Center| -> Vec<u64> {
        c.filesystems
            .iter()
            .flat_map(|f| {
                f.osts
                    .iter()
                    .map(|o| o.group.streaming_bandwidth().as_bytes_per_sec().to_bits())
            })
            .collect()
    };
    let a = Center::build(CenterConfig::small());
    let b = Center::build(CenterConfig::small());
    assert_eq!(fingerprint(&a), fingerprint(&b));

    let mut other_cfg = CenterConfig::small();
    other_cfg.seed ^= 1;
    let c = Center::build(other_cfg);
    assert_ne!(fingerprint(&a), fingerprint(&c), "seed must matter");
}
