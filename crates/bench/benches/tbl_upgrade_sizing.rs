//! Bench for E9 (controller upgrade) and E10 (sizing rules).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spider_core::config::Scale;
use spider_core::experiments::{e09_upgrade, e10_sizing};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tbl_upgrade_sizing");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    g.bench_function("experiment_e9_small", |b| {
        b.iter(|| black_box(e09_upgrade::run(Scale::Small)));
    });
    g.bench_function("experiment_e9_paper", |b| {
        b.iter(|| black_box(e09_upgrade::run(Scale::Paper)));
    });
    g.bench_function("experiment_e10_small", |b| {
        b.iter(|| black_box(e10_sizing::run(Scale::Small)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
