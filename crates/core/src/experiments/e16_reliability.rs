//! E16 — §IV-A: parity declustering and fleet reliability.
//!
//! OLCF "worked with the vendor community to push new features (e.g.
//! parity de-clustering for faster disk rebuilds and improved reliability
//! characteristics) into their products". This experiment quantifies why:
//! a year of Spider-II-scale disk failures is simulated, racing RAID-6
//! rebuilds against further failures, for classic and declustered rebuild
//! speeds — and for the RAID-5 geometry the 8+2 design rejects.

use spider_simkit::SimRng;
use spider_storage::raid::RaidConfig;
use spider_storage::reliability::{
    analytic_group_loss_probability, run_reliability, ReliabilityConfig,
};

use crate::config::Scale;
use crate::report::Table;

/// Run E16.
pub fn run(scale: Scale) -> Vec<Table> {
    let groups = match scale {
        Scale::Paper => 2_016,
        Scale::Small => 200,
    };
    let mut t = Table::new(
        "E16: one simulated year of disk failures — rebuild speed vs data loss",
        &[
            "configuration",
            "disk failures",
            "rebuilds done",
            "data-loss events",
            "analytic loss prob/group/yr",
        ],
    );
    let scenarios: Vec<(&str, ReliabilityConfig)> = vec![
        (
            "RAID-6 8+2, classic rebuild",
            ReliabilityConfig {
                groups,
                ..ReliabilityConfig::spider2()
            },
        ),
        (
            "RAID-6 8+2, declustered 4x",
            ReliabilityConfig {
                groups,
                declustering: 4.0,
                ..ReliabilityConfig::spider2()
            },
        ),
        (
            "RAID-5 9+1, classic rebuild",
            ReliabilityConfig {
                groups,
                raid: RaidConfig {
                    data: 9,
                    parity: 1,
                    segment: 128 << 10,
                },
                ..ReliabilityConfig::spider2()
            },
        ),
    ];
    for (name, cfg) in scenarios {
        let mut rng = SimRng::seed_from_u64(0xE16);
        let report = run_reliability(&cfg, &mut rng);
        t.row(vec![
            name.into(),
            report.disk_failures.to_string(),
            report.rebuilds_completed.to_string(),
            report.data_loss_events.to_string(),
            format!("{:.2e}", analytic_group_loss_probability(&cfg)),
        ]);
    }
    super::trace::experiment("E16", 1, 1);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_declustering_improves_analytic_loss() {
        let t = &run(Scale::Small)[0];
        let prob = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[4]
                .parse()
                .unwrap()
        };
        let classic = prob("RAID-6 8+2, classic rebuild");
        let declustered = prob("RAID-6 8+2, declustered 4x");
        let raid5 = prob("RAID-5 9+1, classic rebuild");
        assert!(declustered < classic);
        assert!(raid5 > classic, "one parity drive is much riskier");
    }

    #[test]
    fn e16_simulated_failures_are_realistic() {
        let t = &run(Scale::Small)[0];
        // 200 groups x 10 disks x 3% AFR ~ 60 failures/yr.
        let failures: u64 = t.rows[0][1].parse().unwrap();
        assert!((30..=90).contains(&failures), "{failures}");
        // RAID-6 keeps data loss at zero-or-one events at this scale.
        let losses: u64 = t.rows[0][3].parse().unwrap();
        assert!(losses <= 1);
    }
}
