//! Diskless provisioning and configuration management (§IV-A, LL7).
//!
//! OLCF boots its Lustre servers diskless via GeDI: nodes tftp-boot an
//! initrd and mount a read-only root, and "configuration files are built as
//! the node boots, but before the service that needs the configuration file
//! is started" via ordered scripts in `/etc/gedi.d` (run "in integer
//! order"). Change management is BCFG2: nodes converge to a declared
//! configuration. LL7: diskless nodes are cheaper (no RAID controllers,
//! backplanes, carriers, drives) and repair faster (reboot vs reimage),
//! improving MTTR.

use std::collections::BTreeMap;

use spider_simkit::SimDuration;

/// Node hardware/boot style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSpec {
    /// GeDI network-boot node: read-only root over tftp, RAM-disk overlays.
    Diskless,
    /// Conventional node with local system disks behind a RAID controller.
    Diskful,
}

impl NodeSpec {
    /// Per-node acquisition cost delta for local boot hardware (RAID
    /// controller, backplane, cabling, carriers, 2 system drives), USD.
    pub fn boot_hardware_cost(self) -> u32 {
        match self {
            NodeSpec::Diskless => 0,
            NodeSpec::Diskful => 1_450,
        }
    }

    /// Time to return a node to service after an OS-level fault.
    pub fn repair_time(self) -> SimDuration {
        match self {
            // Reboot into the (known good) network image.
            NodeSpec::Diskless => SimDuration::from_mins(12),
            // Diagnose disks, reimage, restore configuration.
            NodeSpec::Diskful => SimDuration::from_hours(4),
        }
    }
}

/// A versioned, immutable boot image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageBuild {
    /// Monotonically increasing image version.
    pub version: u32,
    /// Package set baked into the image (name -> version).
    pub packages: BTreeMap<String, String>,
}

/// One ordered boot-time configuration script (a `/etc/gedi.d` entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigScript {
    /// Integer order: scripts run ascending.
    pub order: u32,
    /// Name ("20-ib-srp-daemon", "30-lnet-nis", ...).
    pub name: String,
    /// Config file it generates.
    pub generates: String,
}

/// Result of booting one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootOutcome {
    /// Image version the node is now running.
    pub image_version: u32,
    /// Config files generated, in generation order.
    pub configs: Vec<String>,
    /// Boot duration.
    pub duration: SimDuration,
}

/// Declared node state for convergence (BCFG2-style).
pub type DesiredConfig = BTreeMap<String, String>;

/// The provisioning system: one image, ordered boot scripts, and declared
/// configuration with convergence.
#[derive(Debug, Default)]
pub struct ProvisioningSystem {
    image: Option<ImageBuild>,
    scripts: Vec<ConfigScript>,
    desired: DesiredConfig,
    actual: BTreeMap<String, DesiredConfig>,
}

impl ProvisioningSystem {
    /// Fresh system, no image yet.
    pub fn new() -> Self {
        ProvisioningSystem::default()
    }

    /// Install a new image build (the "robust and repeatable image build
    /// process" LL7 calls for). Rejects version regressions.
    pub fn install_image(&mut self, image: ImageBuild) {
        if let Some(cur) = &self.image {
            assert!(
                image.version > cur.version,
                "image versions must move forward (change management)"
            );
        }
        self.image = Some(image);
    }

    /// Register a boot-time config script.
    pub fn add_script(&mut self, script: ConfigScript) {
        self.scripts.push(script);
        self.scripts
            .sort_by(|a, b| a.order.cmp(&b.order).then(a.name.cmp(&b.name)));
    }

    /// Declare the desired configuration for all nodes.
    pub fn declare(&mut self, desired: DesiredConfig) {
        self.desired = desired;
    }

    /// Boot a node: loads the image, runs gedi.d scripts in integer order
    /// (each generating its config *before* dependent services start), then
    /// converges to the declared configuration.
    pub fn boot(&mut self, node: &str, spec: NodeSpec) -> BootOutcome {
        let image = self.image.as_ref().expect("no image installed");
        let configs: Vec<String> = self.scripts.iter().map(|s| s.generates.clone()).collect();
        // The node starts from the image and converges to desired.
        self.actual.insert(node.to_owned(), self.desired.clone());
        BootOutcome {
            image_version: image.version,
            configs,
            duration: match spec {
                NodeSpec::Diskless => SimDuration::from_mins(6),
                NodeSpec::Diskful => SimDuration::from_mins(18),
            },
        }
    }

    /// Converge a booted node to the declared config; returns the keys that
    /// changed (empty = already converged; idempotent).
    pub fn converge(&mut self, node: &str) -> Vec<String> {
        let actual = self.actual.entry(node.to_owned()).or_default();
        let mut changed = Vec::new();
        for (k, v) in &self.desired {
            if actual.get(k) != Some(v) {
                actual.insert(k.clone(), v.clone());
                changed.push(k.clone());
            }
        }
        // Remove undeclared keys (strict convergence).
        let extra: Vec<String> = actual
            .keys()
            .filter(|k| !self.desired.contains_key(*k))
            .cloned()
            .collect();
        for k in extra {
            actual.remove(&k);
            changed.push(k);
        }
        changed.sort();
        changed
    }

    /// Is the node converged?
    pub fn is_converged(&self, node: &str) -> bool {
        self.actual.get(node) == Some(&self.desired)
    }
}

/// LL7's fleet economics: cost and MTTR deltas for an OSS fleet.
pub fn fleet_boot_hardware_savings(nodes: u32) -> u64 {
    nodes as u64 * NodeSpec::Diskful.boot_hardware_cost() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(v: u32) -> ImageBuild {
        let mut packages = BTreeMap::new();
        packages.insert("lustre".into(), format!("2.4.{v}"));
        packages.insert("ofed".into(), "3.5".into());
        ImageBuild {
            version: v,
            packages,
        }
    }

    #[test]
    fn scripts_run_in_integer_order() {
        let mut p = ProvisioningSystem::new();
        p.install_image(image(1));
        p.add_script(ConfigScript {
            order: 30,
            name: "30-lnet".into(),
            generates: "/etc/modprobe.d/lnet.conf".into(),
        });
        p.add_script(ConfigScript {
            order: 10,
            name: "10-network".into(),
            generates: "/etc/sysconfig/network".into(),
        });
        p.add_script(ConfigScript {
            order: 20,
            name: "20-srp".into(),
            generates: "/etc/srp_daemon.conf".into(),
        });
        let boot = p.boot("oss-001", NodeSpec::Diskless);
        assert_eq!(
            boot.configs,
            vec![
                "/etc/sysconfig/network",
                "/etc/srp_daemon.conf",
                "/etc/modprobe.d/lnet.conf"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "move forward")]
    fn image_rollback_is_rejected() {
        let mut p = ProvisioningSystem::new();
        p.install_image(image(5));
        p.install_image(image(4));
    }

    #[test]
    fn convergence_is_idempotent() {
        let mut p = ProvisioningSystem::new();
        p.install_image(image(1));
        let mut desired = DesiredConfig::new();
        desired.insert("lnet.nis".into(), "o2ib0,o2ib204".into());
        desired.insert("nagios.enabled".into(), "true".into());
        p.declare(desired);
        p.boot("oss-001", NodeSpec::Diskless);
        assert!(p.is_converged("oss-001"), "boot converges");
        assert!(p.converge("oss-001").is_empty(), "second run is a no-op");
        // Drift: change desired; converge reports exactly the delta.
        let mut desired2 = DesiredConfig::new();
        desired2.insert("lnet.nis".into(), "o2ib0,o2ib204,o2ib205".into());
        p.declare(desired2);
        let changed = p.converge("oss-001");
        assert_eq!(changed, vec!["lnet.nis", "nagios.enabled"]);
        assert!(p.is_converged("oss-001"));
    }

    #[test]
    fn diskless_wins_on_cost_and_mttr() {
        // 288 OSS + 4 MDS class servers.
        let savings = fleet_boot_hardware_savings(292);
        assert!(savings > 400_000, "${savings} saved on boot hardware");
        assert!(
            NodeSpec::Diskless.repair_time().as_secs_f64()
                < NodeSpec::Diskful.repair_time().as_secs_f64() / 10.0,
            "MTTR improves by >10x"
        );
    }

    #[test]
    fn boot_requires_an_image() {
        let mut p = ProvisioningSystem::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.boot("oss-000", NodeSpec::Diskless)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn diskless_boots_faster() {
        let mut p = ProvisioningSystem::new();
        p.install_image(image(2));
        let dl = p.boot("a", NodeSpec::Diskless).duration;
        let df = p.boot("b", NodeSpec::Diskful).duration;
        assert!(dl < df);
    }
}
