//! Capacity planning and namespace balancing (§IV-C, §VII, LL10).
//!
//! "OLCF developed a model that classifies projects based on their capacity
//! and bandwidth requirements. The projects were then distributed among the
//! namespaces. This model allowed the OLCF to manage the capacity and
//! bandwidth more evenly across the namespaces."
//!
//! Also encodes the Discussion-section sizing rule: "We typically express a
//! capacity target for a parallel file system of no less than 30x the
//! aggregate system memory of all connected systems", and the LL10 headroom
//! rule (provision 30%+ above workload estimates so fullness stays below
//! the degradation knee).

use spider_simkit::Bandwidth;

/// One allocation/project.
#[derive(Debug, Clone)]
pub struct Project {
    /// Name.
    pub name: String,
    /// Expected capacity footprint (bytes).
    pub capacity: u64,
    /// Expected bandwidth demand.
    pub bandwidth: Bandwidth,
}

/// Classification by dominant requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectClass {
    /// Capacity dominates (relative to the fleet's capacity:bandwidth).
    CapacityHeavy,
    /// Bandwidth dominates.
    BandwidthHeavy,
    /// Neither dominates.
    Balanced,
}

/// Classify projects relative to the fleet's capacity/bandwidth ratio.
pub fn classify_projects(
    projects: &[Project],
    fleet_capacity: u64,
    fleet_bandwidth: Bandwidth,
) -> Vec<ProjectClass> {
    projects
        .iter()
        .map(|p| {
            let cap_frac = p.capacity as f64 / fleet_capacity as f64;
            let bw_frac = p.bandwidth.as_bytes_per_sec() / fleet_bandwidth.as_bytes_per_sec();
            if cap_frac > 1.8 * bw_frac {
                ProjectClass::CapacityHeavy
            } else if bw_frac > 1.8 * cap_frac {
                ProjectClass::BandwidthHeavy
            } else {
                ProjectClass::Balanced
            }
        })
        .collect()
}

/// A project-to-namespace assignment.
#[derive(Debug, Clone)]
pub struct CapacityPlan {
    /// Namespace index per project (parallel to input).
    pub assignment: Vec<usize>,
    /// Capacity committed per namespace.
    pub capacity_per_ns: Vec<u64>,
    /// Bandwidth committed per namespace.
    pub bandwidth_per_ns: Vec<Bandwidth>,
}

impl CapacityPlan {
    /// Plan `projects` over `n_namespaces` greedily: sort by the larger of
    /// the two normalized demands, then place each project on the namespace
    /// where it minimizes the resulting maximum of (capacity, bandwidth)
    /// normalized load.
    pub fn balance(
        projects: &[Project],
        n_namespaces: usize,
        ns_capacity: u64,
        ns_bandwidth: Bandwidth,
    ) -> CapacityPlan {
        assert!(n_namespaces >= 1);
        let norm = |cap: u64, bw: Bandwidth| -> f64 {
            (cap as f64 / ns_capacity as f64)
                .max(bw.as_bytes_per_sec() / ns_bandwidth.as_bytes_per_sec())
        };
        let mut order: Vec<usize> = (0..projects.len()).collect();
        order.sort_by(|&a, &b| {
            norm(projects[b].capacity, projects[b].bandwidth)
                .total_cmp(&norm(projects[a].capacity, projects[a].bandwidth))
                .then(a.cmp(&b))
        });
        let mut capacity_per_ns = vec![0u64; n_namespaces];
        let mut bandwidth_per_ns = vec![Bandwidth::ZERO; n_namespaces];
        let mut assignment = vec![0usize; projects.len()];
        for &p in &order {
            let best = (0..n_namespaces)
                .min_by(|&a, &b| {
                    let la = norm(
                        capacity_per_ns[a] + projects[p].capacity,
                        bandwidth_per_ns[a] + projects[p].bandwidth,
                    );
                    let lb = norm(
                        capacity_per_ns[b] + projects[p].capacity,
                        bandwidth_per_ns[b] + projects[p].bandwidth,
                    );
                    la.total_cmp(&lb).then(a.cmp(&b))
                })
                .expect("at least one namespace");
            assignment[p] = best;
            capacity_per_ns[best] += projects[p].capacity;
            bandwidth_per_ns[best] += projects[p].bandwidth;
        }
        CapacityPlan {
            assignment,
            capacity_per_ns,
            bandwidth_per_ns,
        }
    }

    /// Load imbalance: `(max - min) / max` of per-namespace capacity.
    pub fn capacity_imbalance(&self) -> f64 {
        let max = self.capacity_per_ns.iter().max().copied().unwrap_or(0) as f64;
        let min = self.capacity_per_ns.iter().min().copied().unwrap_or(0) as f64;
        if max == 0.0 {
            0.0
        } else {
            (max - min) / max
        }
    }

    /// Load imbalance of per-namespace bandwidth.
    pub fn bandwidth_imbalance(&self) -> f64 {
        let max = self
            .bandwidth_per_ns
            .iter()
            .map(|b| b.as_bytes_per_sec())
            .fold(0.0, f64::max);
        let min = self
            .bandwidth_per_ns
            .iter()
            .map(|b| b.as_bytes_per_sec())
            .fold(f64::INFINITY, f64::min);
        if max == 0.0 {
            0.0
        } else {
            (max - min) / max
        }
    }
}

/// The Discussion-section capacity rule: the PFS should hold at least
/// `30x` the aggregate memory of every connected system.
pub fn capacity_rule_target(aggregate_memory: u64) -> u64 {
    30 * aggregate_memory
}

/// Check a fleet against the rule; returns the margin factor
/// (capacity / target; >= 1 passes).
pub fn capacity_rule_margin(fleet_capacity: u64, aggregate_memory: u64) -> f64 {
    fleet_capacity as f64 / capacity_rule_target(aggregate_memory) as f64
}

/// LL10's headroom rule: provision so the steady-state working set keeps
/// fullness below the degradation knee. Returns the required capacity for a
/// working set, with `knee` the target maximum fullness (e.g. 0.7).
pub fn headroom_capacity(working_set: u64, knee: f64) -> u64 {
    assert!(knee > 0.0 && knee <= 1.0);
    (working_set as f64 / knee).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_simkit::{GB, PB, TB};

    fn projects() -> Vec<Project> {
        vec![
            Project {
                name: "climate".into(),
                capacity: 4 * PB,
                bandwidth: Bandwidth::gb_per_sec(20.0),
            },
            Project {
                name: "combustion".into(),
                capacity: 2 * PB,
                bandwidth: Bandwidth::gb_per_sec(180.0),
            },
            Project {
                name: "fusion".into(),
                capacity: 3 * PB,
                bandwidth: Bandwidth::gb_per_sec(90.0),
            },
            Project {
                name: "materials".into(),
                capacity: 500 * TB,
                bandwidth: Bandwidth::gb_per_sec(60.0),
            },
            Project {
                name: "astro".into(),
                capacity: 5 * PB,
                bandwidth: Bandwidth::gb_per_sec(110.0),
            },
            Project {
                name: "bio".into(),
                capacity: 800 * TB,
                bandwidth: Bandwidth::gb_per_sec(10.0),
            },
        ]
    }

    #[test]
    fn classification_follows_dominant_demand() {
        let classes = classify_projects(&projects(), 32 * PB, Bandwidth::tb_per_sec(1.0));
        // climate: cap 12.5% vs bw 2% -> capacity heavy.
        assert_eq!(classes[0], ProjectClass::CapacityHeavy);
        // combustion: cap 6.25% vs bw 18% -> bandwidth heavy.
        assert_eq!(classes[1], ProjectClass::BandwidthHeavy);
        // fusion: 9.4% vs 9% -> balanced.
        assert_eq!(classes[2], ProjectClass::Balanced);
    }

    #[test]
    fn balance_beats_naive_halving() {
        let ps = projects();
        let plan = CapacityPlan::balance(&ps, 2, 16 * PB, Bandwidth::gb_per_sec(500.0));
        assert!(
            plan.capacity_imbalance() < 0.35,
            "{}",
            plan.capacity_imbalance()
        );
        assert!(
            plan.bandwidth_imbalance() < 0.35,
            "{}",
            plan.bandwidth_imbalance()
        );
        // Compare with the naive first-half/second-half split.
        let mut naive_cap = [0u64; 2];
        for (i, p) in ps.iter().enumerate() {
            naive_cap[i % 2] += p.capacity;
        }
        let naive_imb = (naive_cap[0].max(naive_cap[1]) - naive_cap[0].min(naive_cap[1])) as f64
            / naive_cap[0].max(naive_cap[1]) as f64;
        assert!(plan.capacity_imbalance() <= naive_imb + 1e-9);
    }

    #[test]
    fn every_project_is_assigned() {
        let ps = projects();
        let plan = CapacityPlan::balance(&ps, 4, 8 * PB, Bandwidth::gb_per_sec(250.0));
        assert_eq!(plan.assignment.len(), ps.len());
        assert!(plan.assignment.iter().all(|&n| n < 4));
        let total: u64 = plan.capacity_per_ns.iter().sum();
        assert_eq!(total, ps.iter().map(|p| p.capacity).sum::<u64>());
    }

    #[test]
    fn spider2_meets_the_30x_rule() {
        // §VII: total connected memory ~770 TB; Spider II formatted >30 PB.
        let target = capacity_rule_target(770 * TB);
        assert_eq!(target, 23_100 * TB);
        let margin = capacity_rule_margin(32 * PB, 770 * TB);
        assert!(margin > 1.0, "margin {margin}");
        // And Titan alone (710 TB memory) leaves room for new systems.
        assert!(capacity_rule_margin(32 * PB, 770 * TB + 200 * TB) > 1.0);
    }

    #[test]
    fn headroom_rule_is_30_percent_plus() {
        // LL10: "capacity targets 30% or more above aggregate user workload
        // estimates" ~ keeping fullness under the 70% knee.
        let ws = 10 * PB;
        let needed = headroom_capacity(ws, 0.7);
        assert!(needed as f64 >= 1.3 * ws as f64);
        assert_eq!(headroom_capacity(7 * GB, 0.7), 10 * GB);
    }

    #[test]
    fn single_namespace_plan_is_trivial() {
        let ps = projects();
        let plan = CapacityPlan::balance(&ps, 1, 32 * PB, Bandwidth::tb_per_sec(1.0));
        assert!(plan.assignment.iter().all(|&n| n == 0));
        assert_eq!(plan.capacity_imbalance(), 0.0);
    }

    #[test]
    fn planning_is_deterministic() {
        let ps = projects();
        let a = CapacityPlan::balance(&ps, 2, 16 * PB, Bandwidth::gb_per_sec(500.0));
        let b = CapacityPlan::balance(&ps, 2, 16 * PB, Bandwidth::gb_per_sec(500.0));
        assert_eq!(a.assignment, b.assignment);
    }
}
