//! The in-memory namespace tree.
//!
//! One instance per mounted file system (Spider II ran two namespaces,
//! `atlas1`/`atlas2`). Holds directories, files, stripe metadata and the
//! three timestamps the purge policy inspects. Designed so read-only
//! traversal needs only `&Namespace` — the parallel tools in `spider-tools`
//! walk it from many threads at once.

use std::collections::BTreeMap;
use std::fmt;

use spider_simkit::SimTime;

use crate::layout::StripeLayout;

/// Index of an inode within its namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InodeId(pub u32);

/// File metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMeta {
    /// Logical size in bytes.
    pub size: u64,
    /// Last access.
    pub atime: SimTime,
    /// Last data modification.
    pub mtime: SimTime,
    /// Last metadata change.
    pub ctime: SimTime,
    /// Stripe layout over OSTs.
    pub stripe: StripeLayout,
    /// Owning project (allocation), for capacity planning.
    pub project: u32,
}

impl FileMeta {
    /// The newest of the three timestamps — what the 14-day purge compares.
    pub fn last_activity(&self) -> SimTime {
        self.atime.max(self.mtime).max(self.ctime)
    }
}

/// Directory or file payload.
#[derive(Debug, Clone)]
pub enum InodeKind {
    /// A directory and its sorted children.
    Dir {
        /// Name -> child inode.
        children: BTreeMap<String, InodeId>,
    },
    /// A regular file.
    File(FileMeta),
}

/// One inode.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Self index.
    pub id: InodeId,
    /// Parent directory (the root is its own parent).
    pub parent: InodeId,
    /// Name within the parent.
    pub name: String,
    /// Payload.
    pub kind: InodeKind,
}

impl Inode {
    /// Is this a directory?
    pub fn is_dir(&self) -> bool {
        matches!(self.kind, InodeKind::Dir { .. })
    }

    /// File metadata, if a file.
    pub fn file(&self) -> Option<&FileMeta> {
        match &self.kind {
            InodeKind::File(m) => Some(m),
            InodeKind::Dir { .. } => None,
        }
    }
}

/// Namespace operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsError {
    /// Path component missing.
    NotFound,
    /// Expected a directory.
    NotADirectory,
    /// Name already exists in the directory.
    Exists,
    /// Directory not empty.
    NotEmpty,
}

impl fmt::Display for NsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NsError::NotFound => "no such file or directory",
            NsError::NotADirectory => "not a directory",
            NsError::Exists => "file exists",
            NsError::NotEmpty => "directory not empty",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NsError {}

/// The namespace tree.
///
/// # Examples
///
/// ```
/// use spider_pfs::layout::StripeLayout;
/// use spider_pfs::namespace::{FileMeta, Namespace};
/// use spider_pfs::ost::OstId;
/// use spider_simkit::SimTime;
///
/// let mut ns = Namespace::new();
/// let dir = ns.mkdir_p("/proj/run1").unwrap();
/// ns.create_file(dir, "out.dat", FileMeta {
///     size: 4096,
///     atime: SimTime::ZERO,
///     mtime: SimTime::ZERO,
///     ctime: SimTime::ZERO,
///     stripe: StripeLayout::new(vec![OstId(0)]),
///     project: 7,
/// }).unwrap();
/// assert_eq!(ns.du(ns.root()), 4096);
/// assert!(ns.lookup("/proj/run1/out.dat").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Namespace {
    inodes: Vec<Option<Inode>>,
    free: Vec<u32>,
    root: InodeId,
    files: u64,
    dirs: u64,
    bytes: u64,
}

impl Default for Namespace {
    fn default() -> Self {
        Self::new()
    }
}

impl Namespace {
    /// An empty namespace with just `/`.
    pub fn new() -> Self {
        let root = Inode {
            id: InodeId(0),
            parent: InodeId(0),
            name: String::new(),
            kind: InodeKind::Dir {
                children: BTreeMap::new(),
            },
        };
        Namespace {
            inodes: vec![Some(root)],
            free: Vec::new(),
            root: InodeId(0),
            files: 0,
            dirs: 1,
            bytes: 0,
        }
    }

    /// The root directory.
    pub fn root(&self) -> InodeId {
        self.root
    }

    /// Live file count.
    pub fn file_count(&self) -> u64 {
        self.files
    }

    /// Live directory count (including the root).
    pub fn dir_count(&self) -> u64 {
        self.dirs
    }

    /// Sum of file sizes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Borrow an inode. Panics on a dangling id (a logic error).
    pub fn get(&self, id: InodeId) -> &Inode {
        self.inodes[id.0 as usize]
            .as_ref()
            .expect("dangling inode id")
    }

    fn get_mut(&mut self, id: InodeId) -> &mut Inode {
        self.inodes[id.0 as usize]
            .as_mut()
            .expect("dangling inode id")
    }

    fn alloc(&mut self, inode: Inode) -> InodeId {
        if let Some(slot) = self.free.pop() {
            let id = InodeId(slot);
            let mut inode = inode;
            inode.id = id;
            self.inodes[slot as usize] = Some(inode);
            id
        } else {
            let id = InodeId(self.inodes.len() as u32);
            let mut inode = inode;
            inode.id = id;
            self.inodes.push(Some(inode));
            id
        }
    }

    fn children_mut(&mut self, dir: InodeId) -> Result<&mut BTreeMap<String, InodeId>, NsError> {
        match &mut self.get_mut(dir).kind {
            InodeKind::Dir { children } => Ok(children),
            InodeKind::File(_) => Err(NsError::NotADirectory),
        }
    }

    /// Children of a directory.
    pub fn children(&self, dir: InodeId) -> Result<&BTreeMap<String, InodeId>, NsError> {
        match &self.get(dir).kind {
            InodeKind::Dir { children } => Ok(children),
            InodeKind::File(_) => Err(NsError::NotADirectory),
        }
    }

    /// Create a subdirectory.
    pub fn mkdir(&mut self, parent: InodeId, name: &str) -> Result<InodeId, NsError> {
        if self.children(parent)?.contains_key(name) {
            return Err(NsError::Exists);
        }
        let id = self.alloc(Inode {
            id: InodeId(0),
            parent,
            name: name.to_owned(),
            kind: InodeKind::Dir {
                children: BTreeMap::new(),
            },
        });
        self.children_mut(parent)?.insert(name.to_owned(), id);
        self.dirs += 1;
        Ok(id)
    }

    /// `mkdir -p`: create every missing component of a `/`-separated path.
    pub fn mkdir_p(&mut self, path: &str) -> Result<InodeId, NsError> {
        let mut cur = self.root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur = match self.children(cur)?.get(comp) {
                Some(&id) if self.get(id).is_dir() => id,
                Some(_) => return Err(NsError::NotADirectory),
                None => self.mkdir(cur, comp)?,
            };
        }
        Ok(cur)
    }

    /// Create a file.
    pub fn create_file(
        &mut self,
        parent: InodeId,
        name: &str,
        meta: FileMeta,
    ) -> Result<InodeId, NsError> {
        if self.children(parent)?.contains_key(name) {
            return Err(NsError::Exists);
        }
        self.bytes += meta.size;
        self.files += 1;
        let id = self.alloc(Inode {
            id: InodeId(0),
            parent,
            name: name.to_owned(),
            kind: InodeKind::File(meta),
        });
        self.children_mut(parent)?.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Resolve a `/`-separated absolute path.
    pub fn lookup(&self, path: &str) -> Option<InodeId> {
        let mut cur = self.root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur = *self.children(cur).ok()?.get(comp)?;
        }
        Some(cur)
    }

    /// Absolute path of an inode.
    pub fn path_of(&self, id: InodeId) -> String {
        if id == self.root {
            return "/".to_owned();
        }
        let mut comps = Vec::new();
        let mut cur = id;
        while cur != self.root {
            let node = self.get(cur);
            comps.push(node.name.clone());
            cur = node.parent;
        }
        comps.reverse();
        format!("/{}", comps.join("/"))
    }

    /// Mutate a file's metadata (size/timestamps). The namespace's byte
    /// accounting follows size changes.
    pub fn update_file<F: FnOnce(&mut FileMeta)>(
        &mut self,
        id: InodeId,
        f: F,
    ) -> Result<(), NsError> {
        // Borrow-split: take size before and after.
        let (old_size, new_size) = match &mut self.get_mut(id).kind {
            InodeKind::File(meta) => {
                let old = meta.size;
                f(meta);
                (old, meta.size)
            }
            InodeKind::Dir { .. } => return Err(NsError::NotADirectory),
        };
        self.bytes = self.bytes - old_size + new_size;
        Ok(())
    }

    /// Unlink a file. Returns its metadata (the caller releases OST space).
    pub fn unlink(&mut self, id: InodeId) -> Result<FileMeta, NsError> {
        let (parent, name, meta) = {
            let node = self.get(id);
            match &node.kind {
                InodeKind::File(meta) => (node.parent, node.name.clone(), meta.clone()),
                InodeKind::Dir { .. } => return Err(NsError::NotADirectory),
            }
        };
        self.children_mut(parent)?.remove(&name);
        self.inodes[id.0 as usize] = None;
        self.free.push(id.0);
        self.files -= 1;
        self.bytes -= meta.size;
        Ok(meta)
    }

    /// Remove an empty directory.
    pub fn rmdir(&mut self, id: InodeId) -> Result<(), NsError> {
        if id == self.root {
            return Err(NsError::NotEmpty);
        }
        let (parent, name) = {
            let node = self.get(id);
            match &node.kind {
                InodeKind::Dir { children } if children.is_empty() => {
                    (node.parent, node.name.clone())
                }
                InodeKind::Dir { .. } => return Err(NsError::NotEmpty),
                InodeKind::File(_) => return Err(NsError::NotADirectory),
            }
        };
        self.children_mut(parent)?.remove(&name);
        self.inodes[id.0 as usize] = None;
        self.free.push(id.0);
        self.dirs -= 1;
        Ok(())
    }

    /// Depth-first visit of the subtree at `start` (inclusive), directories
    /// before their contents, children in name order.
    pub fn visit<F: FnMut(&Inode)>(&self, start: InodeId, mut f: F) {
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            let node = self.get(id);
            f(node);
            if let InodeKind::Dir { children } = &node.kind {
                // Reverse so the smallest name pops first.
                for &child in children.values().rev() {
                    stack.push(child);
                }
            }
        }
    }

    /// Collect the subtree's inode ids (DFS order).
    pub fn subtree(&self, start: InodeId) -> Vec<InodeId> {
        let mut out = Vec::new();
        self.visit(start, |n| out.push(n.id));
        out
    }

    /// Total bytes of all files under `start` — what `du` computes.
    pub fn du(&self, start: InodeId) -> u64 {
        let mut total = 0;
        self.visit(start, |n| {
            if let Some(meta) = n.file() {
                total += meta.size;
            }
        });
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ost::OstId;

    fn meta(size: u64, t: u64) -> FileMeta {
        FileMeta {
            size,
            atime: SimTime::from_secs(t),
            mtime: SimTime::from_secs(t),
            ctime: SimTime::from_secs(t),
            stripe: StripeLayout::new(vec![OstId(0)]),
            project: 0,
        }
    }

    #[test]
    fn mkdir_and_lookup() {
        let mut ns = Namespace::new();
        let a = ns.mkdir(ns.root(), "a").unwrap();
        let b = ns.mkdir(a, "b").unwrap();
        assert_eq!(ns.lookup("/a"), Some(a));
        assert_eq!(ns.lookup("/a/b"), Some(b));
        assert_eq!(ns.lookup("/a/c"), None);
        assert_eq!(ns.path_of(b), "/a/b");
        assert_eq!(ns.dir_count(), 3);
    }

    #[test]
    fn mkdir_p_is_idempotent() {
        let mut ns = Namespace::new();
        let d1 = ns.mkdir_p("/proj/run1/out").unwrap();
        let d2 = ns.mkdir_p("/proj/run1/out").unwrap();
        assert_eq!(d1, d2);
        assert_eq!(ns.dir_count(), 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ns = Namespace::new();
        ns.mkdir(ns.root(), "x").unwrap();
        assert_eq!(ns.mkdir(ns.root(), "x"), Err(NsError::Exists));
        let d = ns.lookup("/x").unwrap();
        ns.create_file(d, "f", meta(10, 0)).unwrap();
        assert_eq!(ns.create_file(d, "f", meta(10, 0)), Err(NsError::Exists));
    }

    #[test]
    fn file_accounting_and_du() {
        let mut ns = Namespace::new();
        let a = ns.mkdir_p("/a").unwrap();
        let b = ns.mkdir_p("/a/b").unwrap();
        ns.create_file(a, "f1", meta(100, 0)).unwrap();
        ns.create_file(b, "f2", meta(50, 0)).unwrap();
        ns.create_file(ns.root(), "top", meta(7, 0)).unwrap();
        assert_eq!(ns.file_count(), 3);
        assert_eq!(ns.total_bytes(), 157);
        assert_eq!(ns.du(a), 150);
        assert_eq!(ns.du(ns.root()), 157);
    }

    #[test]
    fn update_file_adjusts_byte_accounting() {
        let mut ns = Namespace::new();
        let f = ns.create_file(ns.root(), "f", meta(100, 0)).unwrap();
        ns.update_file(f, |m| {
            m.size = 500;
            m.mtime = SimTime::from_secs(9);
        })
        .unwrap();
        assert_eq!(ns.total_bytes(), 500);
        assert_eq!(ns.get(f).file().unwrap().mtime, SimTime::from_secs(9));
    }

    #[test]
    fn unlink_frees_and_reuses_slots() {
        let mut ns = Namespace::new();
        let f = ns.create_file(ns.root(), "f", meta(100, 0)).unwrap();
        let m = ns.unlink(f).unwrap();
        assert_eq!(m.size, 100);
        assert_eq!(ns.file_count(), 0);
        assert_eq!(ns.total_bytes(), 0);
        assert_eq!(ns.lookup("/f"), None);
        // The freed slot is recycled.
        let g = ns.create_file(ns.root(), "g", meta(1, 0)).unwrap();
        assert_eq!(g, f, "slot reuse");
    }

    #[test]
    fn rmdir_only_when_empty() {
        let mut ns = Namespace::new();
        let d = ns.mkdir_p("/d").unwrap();
        let f = ns.create_file(d, "f", meta(1, 0)).unwrap();
        assert_eq!(ns.rmdir(d), Err(NsError::NotEmpty));
        ns.unlink(f).unwrap();
        ns.rmdir(d).unwrap();
        assert_eq!(ns.lookup("/d"), None);
        assert_eq!(ns.dir_count(), 1);
    }

    #[test]
    fn visit_is_deterministic_dfs_in_name_order() {
        let mut ns = Namespace::new();
        let b = ns.mkdir_p("/b").unwrap();
        ns.mkdir_p("/a").unwrap();
        ns.create_file(b, "z", meta(1, 0)).unwrap();
        ns.create_file(b, "a", meta(1, 0)).unwrap();
        let names: Vec<String> = {
            let mut v = Vec::new();
            ns.visit(ns.root(), |n| v.push(n.name.clone()));
            v
        };
        assert_eq!(names, vec!["", "a", "b", "a", "z"]);
    }

    #[test]
    fn last_activity_is_max_of_timestamps() {
        let mut m = meta(1, 10);
        m.atime = SimTime::from_secs(30);
        assert_eq!(m.last_activity(), SimTime::from_secs(30));
    }

    #[test]
    fn million_inode_scale() {
        // The incident recovery story involves >1M files; make sure the
        // tree handles that scale briskly.
        let mut ns = Namespace::new();
        let dir = ns.mkdir_p("/big").unwrap();
        let mut sub = dir;
        for i in 0..1_000 {
            if i % 100 == 0 {
                sub = ns.mkdir(dir, &format!("d{i}")).unwrap();
            }
            for j in 0..1_000 {
                ns.create_file(sub, &format!("f{i}_{j}"), meta(4096, 0))
                    .unwrap();
            }
        }
        assert_eq!(ns.file_count(), 1_000_000);
        assert_eq!(ns.du(dir), 4096 * 1_000_000);
        assert_eq!(ns.subtree(dir).len() as u64, 1 + 10 + 1_000_000);
    }
}
