//! E10 — §III-A / LL2: the RFP sizing rules, checked against the built
//! system.
//!
//! The checkpoint rule (75% of Titan's 600 TB in 6 minutes) and the
//! random-I/O derating rule (disks at 20-25% of peak under random 1 MB)
//! produce the published requirements (~1 TB/s sequential, 240 GB/s
//! random); the assembled Spider II floor is then measured against both.

use spider_simkit::{Bandwidth, SimDuration, SimRng, MIB, TB};
use spider_storage::disk::{Disk, DiskId, DiskSpec};
use spider_storage::fleet::{FleetSpec, StorageFleet};

use crate::config::Scale;
use crate::report::Table;
use crate::sizing::{checkpoint_bandwidth_requirement, random_requirement, SizingAssessment};

/// Run E10.
pub fn run(scale: Scale) -> Vec<Table> {
    // Requirements from the rules.
    let seq_demand = checkpoint_bandwidth_requirement(600 * TB, 0.75, SimDuration::from_mins(6));
    let disk = Disk::nominal(DiskId(0), DiskSpec::nearline_sas_2tb());
    let ratio =
        disk.random_bandwidth(MIB).as_bytes_per_sec() / disk.seq_bandwidth().as_bytes_per_sec();
    let required_sequential = Bandwidth::tb_per_sec(1.0); // the stated RFP target
    let required_random = random_requirement(required_sequential, ratio);

    // Delivered: the (upgraded) 36-SSU floor.
    let mut spec = FleetSpec::spider2_upgraded();
    if scale == Scale::Small {
        // Measure 6 SSUs and extrapolate to 36 (identical units).
        spec.ssus = 6;
    }
    let fleet = StorageFleet::sample(spec, &mut SimRng::seed_from_u64(0xE10));
    let factor = 36.0 / fleet.ssus.len() as f64;
    let delivered_sequential = fleet.aggregate_write_bandwidth(MIB, true) * factor;
    let delivered_random = fleet.aggregate_write_bandwidth(MIB, false) * factor;

    let assessment = SizingAssessment {
        required_sequential,
        required_random,
        delivered_sequential,
        delivered_random,
    };

    let mut t = Table::new(
        "E10: RFP sizing rules vs the assembled Spider II floor",
        &["quantity", "value"],
    );
    t.row(vec![
        "checkpoint demand (75% of 600 TB in 6 min)".into(),
        format!("{:.2} TB/s", seq_demand.as_tb_per_sec()),
    ]);
    t.row(vec![
        "disk random/sequential ratio (1 MiB)".into(),
        format!("{:.1}%", ratio * 100.0),
    ]);
    t.row(vec![
        "required sequential (RFP)".into(),
        format!("{:.2} TB/s", required_sequential.as_tb_per_sec()),
    ]);
    t.row(vec![
        "required random (derated)".into(),
        format!("{:.0} GB/s", required_random.as_gb_per_sec()),
    ]);
    t.row(vec![
        "delivered sequential (36 SSUs)".into(),
        format!("{:.2} TB/s", delivered_sequential.as_tb_per_sec()),
    ]);
    t.row(vec![
        "delivered random (36 SSUs)".into(),
        format!("{:.0} GB/s", delivered_random.as_gb_per_sec()),
    ]);
    t.row(vec![
        "checkpoint of 450 TB at delivered rate".into(),
        format!(
            "{:.1} min",
            assessment.checkpoint_time(450 * TB).as_secs_f64() / 60.0
        ),
    ]);
    t.row(vec![
        "meets both requirements".into(),
        assessment.passes().to_string(),
    ]);
    super::trace::experiment("E10", 1, 1);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(t: &Table, key: &str) -> String {
        t.rows.iter().find(|r| r[0] == key).unwrap()[1].clone()
    }

    #[test]
    fn e10_requirements_match_paper() {
        let t = &run(Scale::Small)[0];
        assert_eq!(value(t, "required sequential (RFP)"), "1.00 TB/s");
        let rnd: f64 = value(t, "required random (derated)")
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((200.0..=250.0).contains(&rnd), "random requirement {rnd}");
        let ratio: f64 = value(t, "disk random/sequential ratio (1 MiB)")
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!((20.0..=25.0).contains(&ratio));
    }

    #[test]
    fn e10_delivered_system_passes() {
        let t = &run(Scale::Small)[0];
        assert_eq!(value(t, "meets both requirements"), "true");
        let seq: f64 = value(t, "delivered sequential (36 SSUs)")
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(seq > 1.0, "1 TB/s class: {seq}");
    }
}
