#![warn(missing_docs)]

//! # spider-obs
//!
//! Deterministic observability for the `spider` workspace: a metrics
//! registry (counters, gauges, histograms), span tracing with JSONL and
//! Chrome `trace_event` exporters, and a run manifest — all behind a global
//! facade that is **zero-cost when disabled** and **deterministic when
//! enabled**.
//!
//! ## Determinism contract
//!
//! - Disabled (the default): every helper is a no-op behind one relaxed
//!   atomic load; instrumented code produces bit-identical output to an
//!   uninstrumented build.
//! - Enabled: the trace and metrics sinks contain only deterministic
//!   quantities (sim-time, logical slot indices, event counts), merged
//!   commutatively and emitted in sorted order, so two runs at the same
//!   seed write byte-identical `trace.jsonl` / `trace_chrome.json` /
//!   `metrics.prom` even when work is spread across threads. Wall-clock is
//!   quarantined in `manifest.json` under the `"wall"` key.
//!
//! ## Usage
//!
//! ```
//! let dir = std::env::temp_dir().join("spider-obs-doctest");
//! spider_obs::init(&dir);
//! spider_obs::counter_add("maxmin_solves", 1);
//! spider_obs::span(0, 0, 1_000, "E2", &[("clients", 64u64.into())]);
//! let files = spider_obs::finish().expect("was enabled");
//! assert!(files.manifest.ends_with("manifest.json"));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod jsonio;
pub mod live;
pub mod manifest;
pub mod metrics;
pub mod trace;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use live::{Alarm, DetectorSpec, LiveConfig, Monitor};
pub use manifest::{fnv1a, git_rev, ManifestBuilder};
pub use metrics::Registry;
pub use trace::{ArgValue, Span, TraceBuffer};

/// Environment variable checked by [`init_from_env`]: a directory path to
/// enable observability, unset/empty to leave it off.
pub const OBS_ENV: &str = "SPIDER_OBS";

static ENABLED: AtomicBool = AtomicBool::new(false);
static LIVE: AtomicBool = AtomicBool::new(false);
static CORE: Mutex<Option<ObsCore>> = Mutex::new(None);

struct ObsCore {
    dir: PathBuf,
    registry: Registry,
    trace: TraceBuffer,
    manifest: ManifestBuilder,
    live: Option<Monitor>,
}

/// Is observability enabled? One relaxed load — the only cost instrumented
/// hot paths pay when the layer is off.
#[inline]
pub fn enabled() -> bool {
    // spider-lint: allow(relaxed-atomic-in-output-path, reason = "set once by init() before any instrumented code runs and cleared only by finish(); every load in a run observes the same value, so thread interleaving cannot reach the output")
    ENABLED.load(Ordering::Relaxed)
}

/// Enable observability, directing sink files to `dir` (created on
/// [`finish`]). Replaces any un-finished previous session.
pub fn init(dir: impl AsRef<Path>) {
    let core = ObsCore {
        dir: dir.as_ref().to_owned(),
        registry: Registry::new(),
        trace: TraceBuffer::new(),
        manifest: ManifestBuilder::new(),
        live: None,
    };
    *CORE.lock().expect("obs lock") = Some(core);
    LIVE.store(false, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Enable observability if [`OBS_ENV`] names a directory. Returns the
/// directory when enabled.
pub fn init_from_env() -> Option<PathBuf> {
    let dir = std::env::var(OBS_ENV).ok().filter(|v| !v.is_empty())?;
    init(&dir);
    Some(PathBuf::from(dir))
}

fn with_core<R>(f: impl FnOnce(&mut ObsCore) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let mut guard = CORE.lock().expect("obs lock");
    guard.as_mut().map(f)
}

/// Add `v` to counter `name`. No-op when disabled.
pub fn counter_add(name: &str, v: u64) {
    with_core(|c| c.registry.counter_add(name, v));
}

/// Set gauge `name` (last write wins; single-threaded phases only).
pub fn gauge_set(name: &str, v: f64) {
    with_core(|c| c.registry.gauge_set(name, v));
}

/// Raise gauge `name` to at least `v` (commutative, parallel-safe).
pub fn gauge_max(name: &str, v: f64) {
    with_core(|c| c.registry.gauge_max(name, v));
}

/// Record `x` into histogram `name` (default log2 binning).
pub fn hist_record(name: &str, x: f64) {
    with_core(|c| c.registry.hist_record(name, x));
}

/// Record an event queue's high-water mark under the canonical
/// `<component>_queue_high_water` gauge (commutative max). One shared
/// helper so the engine wrappers (simkit runs, rpcsim, pdesobs) cannot
/// drift in metric naming or update semantics.
pub fn queue_high_water_gauge(component: &str, high_water: usize) {
    with_core(|c| {
        c.registry
            .gauge_max(&format!("{component}_queue_high_water"), high_water as f64);
    });
}

/// Record a component's deterministic memory footprint under the canonical
/// `<component>_bytes` gauge (commutative max, so the high-water mark
/// survives parallel sections). Bytes must come from a deterministic
/// accounting such as `spider_simkit::MemFootprint` — container capacities,
/// never RSS or allocator globals — so the gauge is bit-stable across runs.
pub fn mem_gauge(component: &str, bytes: u64) {
    with_core(|c| {
        c.registry
            .gauge_max(&format!("{component}_bytes"), bytes as f64);
    });
}

/// Is the live telemetry layer on? One relaxed load (implies [`enabled`]).
#[inline]
pub fn live_enabled() -> bool {
    // spider-lint: allow(relaxed-atomic-in-output-path, reason = "set once by live_init() before the run and cleared only by finish(); constant within a run, so the fast-path load cannot vary across schedules")
    LIVE.load(Ordering::Relaxed)
}

/// Attach a live [`Monitor`] to the enabled obs session. No-op (returns
/// `false`) when obs itself is disabled.
pub fn live_init(cfg: LiveConfig) -> bool {
    let attached = with_core(|c| {
        c.live = Some(Monitor::new(cfg));
    })
    .is_some();
    if attached {
        LIVE.store(true, Ordering::Relaxed);
    }
    attached
}

/// Advance the live poller to sim-time `t_ns`, sampling registry counter
/// rates and evaluating detectors at every crossed boundary.
pub fn live_tick(t_ns: u64) {
    if !live_enabled() {
        return;
    }
    with_core(|c| {
        let ObsCore { registry, live, .. } = c;
        if let Some(m) = live.as_mut() {
            m.tick_registry(t_ns, registry);
        }
    });
}

/// Record one live sample into `(metric, label)` at the poller's current
/// sim-time. No-op unless the live layer is on.
pub fn live_sample(metric: &str, label: &str, value: f64) {
    if !live_enabled() {
        return;
    }
    with_core(|c| {
        if let Some(m) = c.live.as_mut() {
            m.sample(metric, label, value);
        }
    });
}

/// Fold a locally driven [`Monitor`]'s alarms and flight dumps into the
/// session (attaching it wholesale when none is attached yet), so its
/// verdicts reach the `alarms.jsonl` / `flight.jsonl` sinks on
/// [`finish`]. No-op when obs is disabled.
pub fn live_absorb(monitor: Monitor) {
    let attached = with_core(|c| match c.live.as_mut() {
        Some(m) => m.absorb(monitor),
        None => c.live = Some(monitor),
    })
    .is_some();
    if attached {
        LIVE.store(true, Ordering::Relaxed);
    }
}

/// Record a complete span. `ts_ns`/`dur_ns` must be deterministic (sim-time
/// or logical slots — never wall-clock).
pub fn span(track: u32, ts_ns: u64, dur_ns: u64, name: &str, args: &[(&str, ArgValue)]) {
    with_core(|c| {
        c.trace.push(Span {
            track,
            ts_ns,
            dur_ns,
            name: name.to_owned(),
            args: args
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        });
    });
}

/// Set a deterministic manifest provenance field.
pub fn manifest_set(key: &str, value: &str) {
    with_core(|c| c.manifest.set(key, value));
}

/// RAII wall-clock phase timer: elapsed time between construction and drop
/// is charged to `phase` in the manifest (and only there).
pub struct PhaseTimer {
    name: Option<String>,
    started: Instant,
}

impl PhaseTimer {
    /// Start timing `phase` (no-op when disabled).
    pub fn start(phase: &str) -> Self {
        PhaseTimer {
            name: enabled().then(|| phase.to_owned()),
            started: Instant::now(),
        }
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            let ms = self.started.elapsed().as_secs_f64() * 1e3;
            with_core(|c| c.manifest.phase_elapsed(&name, ms));
        }
    }
}

/// Paths of the files [`finish`] wrote.
#[derive(Debug, Clone)]
pub struct ObsFiles {
    /// Output directory.
    pub dir: PathBuf,
    /// `manifest.json` (provenance + wall-clock).
    pub manifest: PathBuf,
    /// `metrics.prom` (Prometheus text exposition).
    pub metrics_prom: PathBuf,
    /// `trace.jsonl` (spans + metric snapshot, one JSON object per line).
    pub trace_jsonl: PathBuf,
    /// `trace_chrome.json` (Chrome/Perfetto `trace_event` format).
    pub trace_chrome: PathBuf,
    /// `alarms.jsonl` (live-detector alarm log; empty without live layer).
    pub alarms: PathBuf,
    /// `flight.jsonl` (flight-recorder dumps; empty without live layer).
    pub flight: PathBuf,
}

/// Flush the session to disk and disable observability. Returns `None` when
/// the layer was not enabled. File contents other than `manifest.json` are
/// deterministic for a deterministic instrumented run.
pub fn finish() -> Option<ObsFiles> {
    ENABLED.store(false, Ordering::Relaxed);
    LIVE.store(false, Ordering::Relaxed);
    let core = CORE.lock().expect("obs lock").take()?;
    std::fs::create_dir_all(&core.dir).ok()?;
    let files = ObsFiles {
        manifest: core.dir.join("manifest.json"),
        metrics_prom: core.dir.join("metrics.prom"),
        trace_jsonl: core.dir.join("trace.jsonl"),
        trace_chrome: core.dir.join("trace_chrome.json"),
        alarms: core.dir.join("alarms.jsonl"),
        flight: core.dir.join("flight.jsonl"),
        dir: core.dir,
    };
    let mut jsonl = core.trace.to_jsonl();
    jsonl.push_str(&core.registry.to_jsonl());
    let (alarm_log, flight_log) = core.live.as_ref().map_or_else(Default::default, |m| {
        (m.to_alarm_jsonl(), m.to_flight_jsonl())
    });
    std::fs::write(&files.manifest, core.manifest.to_json()).ok()?;
    std::fs::write(&files.metrics_prom, core.registry.to_prometheus()).ok()?;
    std::fs::write(&files.trace_jsonl, jsonl).ok()?;
    std::fs::write(&files.trace_chrome, core.trace.to_chrome_json()).ok()?;
    std::fs::write(&files.alarms, alarm_log).ok()?;
    std::fs::write(&files.flight, flight_log).ok()?;
    Some(files)
}

/// Snapshot of the live registry (for tests and in-process inspection).
/// Returns `None` when disabled.
pub fn registry_snapshot() -> Option<Registry> {
    with_core(|c| {
        let mut copy = Registry::new();
        copy.merge(&c.registry);
        copy
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full global lifecycle in ONE test: the facade is process-global,
    /// so concurrent tests must not interleave init/finish. All other obs
    /// tests use the component structs directly.
    #[test]
    fn global_lifecycle_writes_deterministic_sinks() {
        let dir = std::env::temp_dir().join(format!("spider-obs-test-{}", std::process::id()));

        let run = |tag: &str| {
            init(dir.join(tag));
            assert!(enabled());
            assert!(!live_enabled(), "live stays off until live_init");
            manifest_set("seed", "0x5d1de2");
            manifest_set("solver", "event-driven");
            assert!(live_init(LiveConfig {
                detectors: vec![DetectorSpec::HotSpot {
                    metric: "link_util".to_owned(),
                    threshold: 0.9,
                    sustain: 2,
                }],
                ..LiveConfig::default()
            }));
            assert!(live_enabled());
            {
                let _t = PhaseTimer::start("exp:E2");
                counter_add("maxmin_solves", 3);
                counter_add("maxmin_solves", 2);
                queue_high_water_gauge("engine", 41);
                hist_record("flowsim_collapse_ratio", 9.4);
                span(2, 0, 2_000, "E2", &[("scale", "small".into())]);
                span(2, 0, 1_000, "E2/point", &[("clients", 64u64.into())]);
                for t in 1..=3u64 {
                    live_sample("link_util", "leaf0", 0.95);
                    live_tick(t * 1_000_000_000);
                }
            }
            let files = finish().expect("was enabled");
            assert!(!enabled());
            assert!(!live_enabled());
            (
                std::fs::read_to_string(&files.trace_jsonl).unwrap(),
                std::fs::read_to_string(&files.metrics_prom).unwrap(),
                std::fs::read_to_string(&files.trace_chrome).unwrap(),
                std::fs::read_to_string(&files.manifest).unwrap(),
                std::fs::read_to_string(&files.alarms).unwrap(),
                std::fs::read_to_string(&files.flight).unwrap(),
            )
        };

        let (jsonl_a, prom_a, chrome_a, manifest_a, alarms_a, flight_a) = run("a");
        let (jsonl_b, prom_b, chrome_b, manifest_b, alarms_b, flight_b) = run("b");
        // Deterministic sinks are byte-identical across runs.
        assert_eq!(jsonl_a, jsonl_b);
        assert_eq!(prom_a, prom_b);
        assert_eq!(chrome_a, chrome_b);
        assert_eq!(alarms_a, alarms_b);
        assert_eq!(flight_a, flight_b);
        // The sustained hot link fired exactly once, at the second boundary.
        assert_eq!(alarms_a.lines().count(), 1);
        assert!(alarms_a.contains("\"t_ns\":2000000000"));
        assert!(alarms_a.contains("\"detector\":\"hotspot\""));
        assert!(flight_a.contains("\"kind\":\"flight_dump\""));
        // The sinks parse and carry the recorded values.
        let reg = Registry::from_jsonl(&jsonl_a).expect("metrics round-trip");
        assert_eq!(reg.counter("maxmin_solves"), 5);
        assert_eq!(reg.gauge("engine_queue_high_water"), Some(41.0));
        assert!(reg.hist("flowsim_collapse_ratio").is_some());
        let spans = TraceBuffer::from_jsonl(&jsonl_a).expect("spans parse");
        assert_eq!(spans.len(), 2);
        jsonio::parse(&chrome_a).expect("chrome trace is valid JSON");
        let m = jsonio::parse(&manifest_a).expect("manifest is valid JSON");
        assert_eq!(m.get("seed").unwrap().as_str(), Some("0x5d1de2"));
        assert!(m
            .get("wall")
            .unwrap()
            .get("phases")
            .unwrap()
            .get("exp:E2")
            .is_some());
        // Wall-clock differs between runs but only inside "wall".
        let strip = |s: &str| {
            let v = jsonio::parse(s).unwrap();
            match v {
                jsonio::JsonValue::Obj(mut o) => {
                    o.remove("wall");
                    format!("{o:?}")
                }
                _ => unreachable!(),
            }
        };
        assert_eq!(strip(&manifest_a), strip(&manifest_b));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_helpers_are_noops() {
        // Never init'd in this test (and the lifecycle test always finishes,
        // so worst case we race an enabled window and the asserts still
        // hold: these helpers don't panic either way).
        counter_add("nope", 1);
        gauge_max("nope", 1.0);
        hist_record("nope", 1.0);
        queue_high_water_gauge("nope", 1);
        mem_gauge("nope", 1);
        span(0, 0, 0, "nope", &[]);
        manifest_set("nope", "x");
        live_tick(1);
        live_sample("nope", "nope", 1.0);
        let _t = PhaseTimer::start("nope");
    }
}
