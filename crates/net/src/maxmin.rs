//! Progressive-filling max-min fair bandwidth allocation.
//!
//! The end-to-end throughput engine: every I/O stream is a *flow* across a
//! list of capacitated *resources* (client NIC, torus links, LNET router,
//! IB leaf, OSS, controller couplet, RAID group). Water-filling raises all
//! flows together; when a resource saturates, the flows crossing it freeze
//! at their fair share and the rest keep growing. The result is the unique
//! max-min fair allocation, a standard steady-state model for TCP-like
//! bandwidth sharing in capacitated networks.
//!
//! # Weighted flow classes
//!
//! A [`FlowSpec`] carries a `weight`: the number of *identical member flows*
//! it stands for. In a max-min fair allocation, flows with the same resource
//! path and the same cap always receive the same rate, so a caller can
//! collapse thousands of identical per-client flows (Titan: 18,688 clients
//! funneling into ~1,000 distinct OST paths) into one weighted class per
//! path and solve a problem that is an order of magnitude smaller. The
//! solver returns the *per-member* rate of each class.
//!
//! # Two solvers
//!
//! [`MaxMinProblem::solve`] is event-driven water-filling: the common water
//! level rises monotonically, per-resource saturation levels live in a lazy
//! min-heap, cap events come from a cap-sorted cursor, and a freeze touches
//! only the flows adjacent to the saturated resource. Per round it does
//! O(freezes × path + log R) work instead of rescanning every flow and
//! resource, which turns the worst case from O(flows² × path) into roughly
//! O((flows × path + R) log R).
//!
//! [`MaxMinProblem::solve_reference`] is the naive full-rescan loop kept as
//! the differential-testing oracle; both must agree to within 1e-6.
//!
//! # Component decomposition
//!
//! Two flows are *coupled* when they are connected in the bipartite
//! flow–resource graph: they share a resource, or share one transitively
//! through other flows. Water-filling never moves capacity between
//! components of that graph, so [`MaxMinProblem::solve`] partitions the
//! flow set with a union-find over resource indices and solves each
//! connected component independently — in parallel across components, in
//! fixed component-id order — and scatters the per-component rates back
//! into the flat result. The per-component solves are **bitwise identical**
//! to the corresponding positions of one global event-driven solve: every
//! float the solver touches (`active_weight`, checkpoints, levels) is
//! per-resource state owned by exactly one component, the event loop
//! processes events in ascending level order with deterministic tie-breaks
//! (cap events by `(cap, flow position)`, saturation events by resource
//! id), and the water level is monotone — so the global event sequence
//! restricted to one component is exactly that component's own event
//! sequence. [`MaxMinProblem::solve_global`] keeps the undecomposed path
//! as the differential oracle for that claim.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rayon::prelude::*;

/// Identifier of a capacitated resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub usize);

/// A flow class: the ordered set of resources its members cross, an optional
/// intrinsic per-member rate cap (e.g. a per-process injection limit), and
/// the number of identical members it represents.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Resources the flow consumes (duplicates are legal and count twice).
    pub resources: Vec<ResourceId>,
    /// Intrinsic per-member cap in the same units as resource capacities.
    pub cap: Option<f64>,
    /// Number of identical member flows in this class (default 1).
    pub weight: f64,
}

impl FlowSpec {
    /// A unit-weight flow over the given resources with no intrinsic cap.
    pub fn new(resources: Vec<ResourceId>) -> Self {
        FlowSpec {
            resources,
            cap: None,
            weight: 1.0,
        }
    }

    /// Attach an intrinsic per-member cap.
    pub fn with_cap(mut self, cap: f64) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Set the class multiplicity (must be positive and finite).
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "flow weight must be positive and finite, got {weight}"
        );
        self.weight = weight;
        self
    }
}

/// A max-min fair allocation problem.
///
/// # Examples
///
/// ```
/// use spider_net::maxmin::{FlowSpec, MaxMinProblem};
///
/// let mut problem = MaxMinProblem::new();
/// let link = problem.add_resource(10.0);
/// let flows = vec![
///     FlowSpec::new(vec![link]).with_cap(2.0), // capped flow
///     FlowSpec::new(vec![link]),               // takes the rest
/// ];
/// let rates = problem.solve(&flows);
/// assert!((rates[0] - 2.0).abs() < 1e-9);
/// assert!((rates[1] - 8.0).abs() < 1e-9);
///
/// // A weight-2 class is exactly two identical unit flows:
/// let classes = vec![
///     FlowSpec::new(vec![link]).with_weight(2.0),
///     FlowSpec::new(vec![link]),
/// ];
/// let rates = problem.solve(&classes);
/// assert!((rates[0] - 10.0 / 3.0).abs() < 1e-9); // per-member rate
/// assert!((rates[1] - 10.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaxMinProblem {
    capacities: Vec<f64>,
}

const EPS: f64 = 1e-9;

/// Counters describing one event-driven [`MaxMinProblem::solve`] run.
///
/// Filled by [`MaxMinProblem::solve_with_stats`]; the plain [`solve`] path
/// maintains the same counters (they are branch-free u64 increments) and
/// flushes them to the `spider-obs` registry when observability is enabled.
///
/// [`solve`]: MaxMinProblem::solve
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Flow classes in the problem.
    pub flows: u64,
    /// Flows frozen before water-filling began (exhausted resource on the
    /// path, or a zero cap).
    pub prefrozen: u64,
    /// Event-loop rounds (one cap or saturation event per round).
    pub rounds: u64,
    /// Flows frozen by reaching their intrinsic per-member cap.
    pub cap_freezes: u64,
    /// Flows frozen because a resource on their path saturated.
    pub saturation_freezes: u64,
    /// Heap entries pushed (initial schedule plus freeze-time reschedules).
    pub heap_pushes: u64,
    /// Heap entries popped, current and stale alike.
    pub heap_pops: u64,
    /// Popped entries discarded as stale (invalidated by a later reschedule
    /// of the same resource, or by its saturation or emptying).
    pub stale_discards: u64,
    /// Connected components in the flow–resource coupling graph (prefrozen
    /// flows count as singletons; 0 for an empty flow set). Left at 0 by
    /// the undecomposed [`MaxMinProblem::solve_global`] oracle.
    pub components: u64,
    /// Flow count of the largest component. Left at 0 by
    /// [`MaxMinProblem::solve_global`].
    pub largest_component: u64,
    /// Resources in the order they saturated. Only collected by
    /// [`MaxMinProblem::solve_with_stats`] — the plain path skips the
    /// allocation. On the component-decomposed path the order is grouped
    /// by component (components are independent, so no global interleaving
    /// is lost).
    pub saturation_order: Vec<u32>,
}

impl SolveStats {
    /// Flush the counters into the global `spider-obs` registry (call only
    /// when `spider_obs::enabled()`).
    pub(crate) fn flush_obs(&self) {
        spider_obs::counter_add("maxmin_solves", 1);
        spider_obs::counter_add("maxmin_rounds", self.rounds);
        spider_obs::counter_add("maxmin_prefrozen", self.prefrozen);
        spider_obs::counter_add("maxmin_cap_freezes", self.cap_freezes);
        spider_obs::counter_add("maxmin_saturation_freezes", self.saturation_freezes);
        spider_obs::counter_add("maxmin_heap_pushes", self.heap_pushes);
        spider_obs::counter_add("maxmin_heap_pops", self.heap_pops);
        spider_obs::counter_add("maxmin_stale_discards", self.stale_discards);
        spider_obs::hist_record("maxmin_flows_per_solve", self.flows as f64);
        if self.components > 0 {
            spider_obs::hist_record("maxmin_components_per_solve", self.components as f64);
        }
    }
}

/// Union-find over resource indices, the component index of the
/// flow–resource coupling graph. Unions always keep the smaller root, so a
/// set's representative is its minimum resource index — a canonical label
/// independent of union order.
#[derive(Debug, Clone, Default)]
pub(crate) struct ResourceUnionFind {
    parent: Vec<u32>,
}

impl ResourceUnionFind {
    pub(crate) fn new(n_res: usize) -> Self {
        ResourceUnionFind {
            parent: (0..n_res as u32).collect(),
        }
    }

    /// Representative of `x`'s set, with path halving.
    pub(crate) fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merge the sets of `a` and `b`; the smaller root wins.
    pub(crate) fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra < rb {
            self.parent[rb as usize] = ra;
        } else if rb < ra {
            self.parent[ra as usize] = rb;
        }
    }

    /// Union all resources along one flow path into one set.
    pub(crate) fn union_path(&mut self, path: &[u32]) {
        if let Some((&first, rest)) = path.split_first() {
            for &r in rest {
                self.union(first, r);
            }
        }
    }
}

impl spider_simkit::MemFootprint for ResourceUnionFind {
    fn mem_bytes(&self) -> u64 {
        spider_simkit::slab_bytes::<u32>(self.parent.capacity())
    }
}

/// Columnar (structure-of-arrays) view of a flow set: CSR paths plus cap and
/// weight columns, indexed through an explicit `ids` selection list.
///
/// This is the representation the solver core ([`MaxMinProblem::solve_view`])
/// actually runs on. [`MaxMinProblem::solve`] flattens its `&[FlowSpec]`
/// argument into a transient [`FlowColumns`]; the incremental
/// [`crate::session::SolveSession`] keeps the columns resident across calls
/// and re-selects the live subset. Both paths execute the *same* float
/// operations, which is what makes session results bit-identical to
/// from-scratch solves.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlowsView<'a> {
    /// Arena slot of each flow, in solve order.
    pub(crate) ids: &'a [u32],
    /// CSR offsets into `path_res`, indexed by arena slot (`slots + 1` long).
    pub(crate) path_off: &'a [u32],
    /// Flattened resource indices of every slot's path.
    pub(crate) path_res: &'a [u32],
    /// Per-slot intrinsic per-member cap; `f64::INFINITY` means uncapped.
    pub(crate) cap: &'a [f64],
    /// Per-slot class weight.
    pub(crate) weight: &'a [f64],
}

impl FlowsView<'_> {
    fn len(&self) -> usize {
        self.ids.len()
    }

    /// Resource indices crossed by the flow at view position `k`.
    fn path(&self, k: usize) -> &[u32] {
        let s = self.ids[k] as usize;
        &self.path_res[self.path_off[s] as usize..self.path_off[s + 1] as usize]
    }

    fn cap_of(&self, k: usize) -> f64 {
        self.cap[self.ids[k] as usize]
    }

    fn weight_of(&self, k: usize) -> f64 {
        self.weight[self.ids[k] as usize]
    }
}

/// Owned columnar flow storage backing a [`FlowsView`].
#[derive(Debug, Clone, Default)]
pub(crate) struct FlowColumns {
    pub(crate) ids: Vec<u32>,
    pub(crate) path_off: Vec<u32>,
    pub(crate) path_res: Vec<u32>,
    pub(crate) cap: Vec<f64>,
    pub(crate) weight: Vec<f64>,
}

impl FlowColumns {
    /// Flatten specs into columns, one slot per spec, identity selection.
    pub(crate) fn from_specs(flows: &[FlowSpec]) -> Self {
        let mut cols = FlowColumns {
            ids: (0..flows.len() as u32).collect(),
            path_off: Vec::with_capacity(flows.len() + 1),
            path_res: Vec::with_capacity(flows.iter().map(|f| f.resources.len()).sum()),
            cap: Vec::with_capacity(flows.len()),
            weight: Vec::with_capacity(flows.len()),
        };
        cols.path_off.push(0);
        for f in flows {
            for r in &f.resources {
                cols.path_res.push(r.0 as u32);
            }
            cols.path_off.push(cols.path_res.len() as u32);
            cols.cap.push(f.cap.unwrap_or(f64::INFINITY));
            cols.weight.push(f.weight);
        }
        cols
    }

    pub(crate) fn view(&self) -> FlowsView<'_> {
        FlowsView {
            ids: &self.ids,
            path_off: &self.path_off,
            path_res: &self.path_res,
            cap: &self.cap,
            weight: &self.weight,
        }
    }
}

impl spider_simkit::MemFootprint for FlowColumns {
    fn mem_bytes(&self) -> u64 {
        use spider_simkit::slab_bytes;
        slab_bytes::<u32>(self.ids.capacity())
            + slab_bytes::<u32>(self.path_off.capacity())
            + slab_bytes::<u32>(self.path_res.capacity())
            + slab_bytes::<f64>(self.cap.capacity())
            + slab_bytes::<f64>(self.weight.capacity())
    }
}

impl spider_simkit::MemFootprint for MaxMinProblem {
    fn mem_bytes(&self) -> u64 {
        spider_simkit::slab_bytes::<f64>(self.capacities.capacity())
    }
}

impl MaxMinProblem {
    /// Empty problem.
    pub fn new() -> Self {
        MaxMinProblem::default()
    }

    /// Register a resource with the given capacity (>= 0).
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(capacity >= 0.0 && capacity.is_finite());
        self.capacities.push(capacity);
        ResourceId(self.capacities.len() - 1)
    }

    /// Number of registered resources.
    pub fn resources(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of a resource.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.capacities[r.0]
    }

    fn validate(&self, flows: &[FlowSpec]) {
        let n_res = self.capacities.len();
        for (i, f) in flows.iter().enumerate() {
            assert!(
                !f.resources.is_empty() || f.cap.is_some(),
                "flow {i} has no resources and no cap: unbounded"
            );
            assert!(
                f.weight > 0.0 && f.weight.is_finite(),
                "flow {i} has non-positive weight {}",
                f.weight
            );
            for r in &f.resources {
                assert!(r.0 < n_res, "flow {i} references unknown resource {r:?}");
            }
        }
    }

    /// View-level validation mirroring [`Self::validate`]; `f64::INFINITY`
    /// caps stand for "uncapped".
    fn validate_view(&self, v: &FlowsView<'_>) {
        let n_res = self.capacities.len();
        for k in 0..v.len() {
            let (path, cap, weight) = (v.path(k), v.cap_of(k), v.weight_of(k));
            assert!(
                !path.is_empty() || cap.is_finite(),
                "flow {k} has no resources and no cap: unbounded"
            );
            assert!(
                weight > 0.0 && weight.is_finite(),
                "flow {k} has non-positive weight {weight}"
            );
            for &r in path {
                assert!(
                    (r as usize) < n_res,
                    "flow {k} references unknown resource ResourceId({r})"
                );
            }
        }
    }

    /// Flows dead on arrival: crossing an exhausted resource or carrying a
    /// zero cap. Their rate is 0 and they never join the water-filling.
    fn prefrozen(&self, f: &FlowSpec) -> bool {
        f.resources.iter().any(|r| self.capacities[r.0] <= EPS) || f.cap.is_some_and(|c| c <= EPS)
    }

    /// View-level twin of [`Self::prefrozen`].
    pub(crate) fn prefrozen_path(&self, path: &[u32], cap: f64) -> bool {
        path.iter().any(|&r| self.capacities[r as usize] <= EPS) || cap <= EPS
    }

    /// Solve for the max-min fair per-member rates of `flows`.
    ///
    /// Event-driven water-filling, decomposed over the connected components
    /// of the flow–resource coupling graph (independent components solve in
    /// parallel; a single-component problem takes the undecomposed path
    /// directly). Every flow must either cross at least one resource or
    /// carry a cap; otherwise its fair rate would be unbounded and the call
    /// panics.
    pub fn solve(&self, flows: &[FlowSpec]) -> Vec<f64> {
        let mut stats = SolveStats::default();
        let cols = FlowColumns::from_specs(flows);
        let rates = self.solve_decomposed(&cols.view(), &mut stats, false);
        if spider_obs::enabled() {
            stats.flush_obs();
        }
        rates
    }

    /// Like [`Self::solve`], also returning the solver's event counters and
    /// the order in which resources saturated.
    pub fn solve_with_stats(&self, flows: &[FlowSpec]) -> (Vec<f64>, SolveStats) {
        let mut stats = SolveStats::default();
        let cols = FlowColumns::from_specs(flows);
        let rates = self.solve_decomposed(&cols.view(), &mut stats, true);
        if spider_obs::enabled() {
            stats.flush_obs();
        }
        (rates, stats)
    }

    /// Solve the whole flow set as one coupled problem, skipping the
    /// component decomposition. This is the differential oracle for the
    /// decomposed [`Self::solve`]: the two are bitwise identical on every
    /// input (`components` / `largest_component` stay 0 here — this path
    /// never counts them).
    pub fn solve_global(&self, flows: &[FlowSpec]) -> Vec<f64> {
        self.solve_global_with_stats(flows).0
    }

    /// [`Self::solve_global`] with the solver's event counters.
    pub fn solve_global_with_stats(&self, flows: &[FlowSpec]) -> (Vec<f64>, SolveStats) {
        let mut stats = SolveStats::default();
        let cols = FlowColumns::from_specs(flows);
        let rates = self.solve_view(&cols.view(), &mut stats, true);
        if spider_obs::enabled() {
            stats.flush_obs();
        }
        (rates, stats)
    }

    /// Connected components of the flow–resource coupling graph: groups of
    /// flow indices (positions in `flows`), each group ascending, groups
    /// ordered by smallest member. Flows coupled through a shared
    /// capacitated resource — directly or transitively — share a group;
    /// cap-only flows and prefrozen flows (exhausted resource or zero cap,
    /// rate pinned at 0) are singletons since they never exchange capacity
    /// with anything.
    pub fn flow_components(&self, flows: &[FlowSpec]) -> Vec<Vec<u32>> {
        let cols = FlowColumns::from_specs(flows);
        self.components_of_view(&cols.view())
    }

    /// [`Self::flow_components`] on a columnar view.
    pub(crate) fn components_of_view(&self, v: &FlowsView<'_>) -> Vec<Vec<u32>> {
        let mut uf = ResourceUnionFind::new(self.capacities.len());
        for k in 0..v.len() {
            if !self.prefrozen_path(v.path(k), v.cap_of(k)) {
                uf.union_path(v.path(k));
            }
        }
        self.group_by_component(v, &mut uf)
    }

    /// Partition view positions into component groups under an existing
    /// union-find. The index may be *coarser* than the true partition
    /// (stale unions from removed flows): merged-but-independent components
    /// still solve bit-identically, just with less parallelism, so callers
    /// maintaining `uf` incrementally can rebuild lazily.
    pub(crate) fn group_by_component(
        &self,
        v: &FlowsView<'_>,
        uf: &mut ResourceUnionFind,
    ) -> Vec<Vec<u32>> {
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut group_of_root: Vec<u32> = vec![u32::MAX; self.capacities.len()];
        for k in 0..v.len() {
            let path = v.path(k);
            if path.is_empty() || self.prefrozen_path(path, v.cap_of(k)) {
                groups.push(vec![k as u32]);
            } else {
                let root = uf.find(path[0]) as usize;
                if group_of_root[root] == u32::MAX {
                    group_of_root[root] = groups.len() as u32;
                    groups.push(Vec::new());
                }
                groups[group_of_root[root] as usize].push(k as u32);
            }
        }
        groups
    }

    /// Component-decomposed solve: partition, solve each component, scatter.
    pub(crate) fn solve_decomposed(
        &self,
        flows: &FlowsView<'_>,
        stats: &mut SolveStats,
        want_order: bool,
    ) -> Vec<f64> {
        let groups = self.components_of_view(flows);
        if groups.len() <= 1 {
            // Single component: the decomposition would be the identity, so
            // run the undecomposed core directly — zero per-component
            // overhead, identical event counters.
            stats.components = groups.len() as u64;
            stats.largest_component = flows.len() as u64;
            return self.solve_view(flows, stats, want_order);
        }
        self.solve_components(flows, &groups, stats, want_order)
    }

    /// Solve each component independently — in parallel, in fixed
    /// component-id order — against the full problem (resource indices are
    /// not remapped; a component view simply selects its member flows).
    /// Rates scatter back by view position; counters sum in component
    /// order. Bitwise identical to [`Self::solve_view`] on the whole view:
    /// see the module docs.
    pub(crate) fn solve_components(
        &self,
        flows: &FlowsView<'_>,
        groups: &[Vec<u32>],
        stats: &mut SolveStats,
        want_order: bool,
    ) -> Vec<f64> {
        stats.components = groups.len() as u64;
        stats.largest_component = groups.iter().map(Vec::len).max().unwrap_or(0) as u64;
        let indexed: Vec<(u32, &Vec<u32>)> = groups
            .iter()
            .enumerate()
            .map(|(g, members)| (g as u32, members))
            .collect();
        let mut parts: Vec<(u32, Vec<f64>, SolveStats)> = indexed
            .par_iter()
            .map(|&(g, members)| {
                let ids: Vec<u32> = members.iter().map(|&k| flows.ids[k as usize]).collect();
                let sub = FlowsView {
                    ids: &ids,
                    ..*flows
                };
                let mut st = SolveStats::default();
                let rates = self.solve_view(&sub, &mut st, want_order);
                (g, rates, st)
            })
            .collect();
        // `collect` already preserves input order; the sort is the explicit
        // fixed-order barrier canonicalizing the merge by component id
        // regardless of which thread solved what.
        parts.sort_by_key(|p| p.0);
        let mut rates = vec![0.0f64; flows.len()];
        for ((_, part_rates, st), members) in parts.iter().zip(groups) {
            for (&k, &r) in members.iter().zip(part_rates) {
                rates[k as usize] = r;
            }
            stats.flows += st.flows;
            stats.prefrozen += st.prefrozen;
            stats.rounds += st.rounds;
            stats.cap_freezes += st.cap_freezes;
            stats.saturation_freezes += st.saturation_freezes;
            stats.heap_pushes += st.heap_pushes;
            stats.heap_pops += st.heap_pops;
            stats.stale_discards += st.stale_discards;
            if want_order {
                stats
                    .saturation_order
                    .extend_from_slice(&st.saturation_order);
            }
        }
        rates
    }

    /// The event-driven solver core, running on a columnar [`FlowsView`].
    /// Returns per-member rates indexed by view position.
    pub(crate) fn solve_view(
        &self,
        flows: &FlowsView<'_>,
        stats: &mut SolveStats,
        want_order: bool,
    ) -> Vec<f64> {
        let n_res = self.capacities.len();
        let n_flows = flows.len();
        let mut rates = vec![0.0f64; n_flows];
        stats.flows = n_flows as u64;
        if n_flows == 0 {
            return rates;
        }
        self.validate_view(flows);

        // Weighted usage per resource from unfrozen flows, and the
        // resource -> flows adjacency (CSR; duplicates are fine because a
        // freeze is idempotent under the `frozen` flag).
        let mut active_weight = vec![0.0f64; n_res];
        let mut frozen = vec![false; n_flows];
        let mut unfrozen = n_flows;

        for (i, fz) in frozen.iter_mut().enumerate() {
            if self.prefrozen_path(flows.path(i), flows.cap_of(i)) {
                *fz = true;
                unfrozen -= 1;
                stats.prefrozen += 1;
            } else {
                let w = flows.weight_of(i);
                for &r in flows.path(i) {
                    active_weight[r as usize] += w;
                }
            }
        }

        let mut adj_off = vec![0usize; n_res + 1];
        for (i, &fz) in frozen.iter().enumerate() {
            if !fz {
                for &r in flows.path(i) {
                    adj_off[r as usize + 1] += 1;
                }
            }
        }
        for r in 0..n_res {
            adj_off[r + 1] += adj_off[r];
        }
        let mut adj = vec![0u32; adj_off[n_res]];
        {
            let mut cursor = adj_off.clone();
            for (i, &fz) in frozen.iter().enumerate() {
                if !fz {
                    for &r in flows.path(i) {
                        adj[cursor[r as usize]] = i as u32;
                        cursor[r as usize] += 1;
                    }
                }
            }
        }

        // Per-resource lazy state: remaining capacity as of `ckpt_level`.
        // remaining(level) = ckpt_remaining - active_weight * (level - ckpt).
        let mut ckpt_remaining = self.capacities.clone();
        let mut ckpt_level = vec![0.0f64; n_res];
        let mut saturated = vec![false; n_res];

        let saturation_level =
            |r: usize, ckpt_remaining: &[f64], ckpt_level: &[f64], active_weight: &[f64]| -> f64 {
                ckpt_level[r] + ckpt_remaining[r] / active_weight[r]
            };

        // Min-heap of predicted resource saturation levels. Entries are
        // lazy: a freeze moves a resource's prediction later and pushes a
        // fresh entry, leaving the old one stale in the heap. `latest_key`
        // holds the key of the newest entry per resource, so a popped entry
        // whose key doesn't match is discarded outright — the current entry
        // is still in the heap, and nothing is re-pushed (re-pushing on
        // stale pops would let duplicates multiply and go quadratic).
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let key = |level: f64| -> u64 {
            // Monotone map from non-negative floats to u64 for heap ordering.
            level.max(0.0).to_bits()
        };
        let mut latest_key = vec![u64::MAX; n_res];
        for r in 0..n_res {
            if active_weight[r] > EPS {
                let s = saturation_level(r, &ckpt_remaining, &ckpt_level, &active_weight);
                latest_key[r] = key(s);
                heap.push(Reverse((key(s), r as u32)));
                stats.heap_pushes += 1;
            }
        }

        // Cap events: unfrozen capped flows, ascending by cap.
        let mut by_cap: Vec<u32> = (0..n_flows as u32)
            .filter(|&i| !frozen[i as usize] && flows.cap_of(i as usize).is_finite())
            .collect();
        // Equal caps tie-break by view position: equal-cap freezes on a
        // shared resource subtract `active_weight` in a fixed order, which
        // the component-decomposed path relies on to stay bit-identical to
        // the global solve (a component view preserves relative positions).
        by_cap.sort_unstable_by(|&a, &b| {
            let ca = flows.cap_of(a as usize);
            let cb = flows.cap_of(b as usize);
            ca.total_cmp(&cb).then(a.cmp(&b))
        });
        let mut cap_cursor = 0usize;

        // Freezing a flow at the current level: record its rate and remove
        // its weight from every resource it crosses (advancing each
        // resource's checkpoint to `level` first so lazily-accrued usage is
        // accounted), then reschedule those resources in the heap.
        macro_rules! freeze_flow {
            ($i:expr, $rate:expr, $level:expr) => {{
                let i = $i;
                frozen[i] = true;
                unfrozen -= 1;
                rates[i] = $rate;
                let w = flows.weight_of(i);
                for &r in flows.path(i) {
                    let r = r as usize;
                    ckpt_remaining[r] -= active_weight[r] * ($level - ckpt_level[r]);
                    ckpt_level[r] = $level;
                    active_weight[r] -= w;
                    if !saturated[r] {
                        if ckpt_remaining[r] <= EPS {
                            // Fully drained by accrual: saturates right here.
                            latest_key[r] = key($level);
                            heap.push(Reverse((latest_key[r], r as u32)));
                            stats.heap_pushes += 1;
                        } else if active_weight[r] > EPS {
                            let s =
                                saturation_level(r, &ckpt_remaining, &ckpt_level, &active_weight);
                            latest_key[r] = key(s);
                            heap.push(Reverse((latest_key[r], r as u32)));
                            stats.heap_pushes += 1;
                        } else {
                            // No unfrozen flow crosses r: it can no longer
                            // saturate; invalidate any live entry.
                            latest_key[r] = u64::MAX;
                        }
                    }
                }
            }};
        }

        let mut level = 0.0f64;
        while unfrozen > 0 {
            stats.rounds += 1;
            // Skip cap entries frozen meanwhile (by resource saturation).
            while cap_cursor < by_cap.len() && frozen[by_cap[cap_cursor] as usize] {
                cap_cursor += 1;
            }
            let next_cap = if cap_cursor < by_cap.len() {
                // by_cap indexes only finitely-capped flows.
                flows.cap_of(by_cap[cap_cursor] as usize)
            } else {
                f64::INFINITY
            };

            // Discard stale heap entries (key no longer the resource's
            // latest) until the top is current.
            let next_res = loop {
                match heap.peek() {
                    None => break None,
                    Some(&Reverse((k, r))) => {
                        let r = r as usize;
                        if saturated[r] || active_weight[r] <= EPS || k != latest_key[r] {
                            heap.pop();
                            stats.heap_pops += 1;
                            stats.stale_discards += 1;
                            continue;
                        }
                        let s = saturation_level(r, &ckpt_remaining, &ckpt_level, &active_weight);
                        break Some((s.max(level), r));
                    }
                }
            };

            match (next_res, next_cap.is_finite()) {
                (None, false) => {
                    // No binding constraint remains; cannot happen for
                    // validated flows (every unfrozen flow is capped or
                    // crosses a resource it weights down), but mirror the
                    // reference solver's defensive stop.
                    break;
                }
                (Some((s, _)), true) if next_cap <= s => {
                    // Cap event first.
                    level = next_cap;
                    let i = by_cap[cap_cursor] as usize;
                    cap_cursor += 1;
                    stats.cap_freezes += 1;
                    freeze_flow!(i, next_cap, level);
                }
                (None, true) => {
                    level = next_cap;
                    let i = by_cap[cap_cursor] as usize;
                    cap_cursor += 1;
                    stats.cap_freezes += 1;
                    freeze_flow!(i, next_cap, level);
                }
                (Some((s, r)), _) => {
                    // Resource saturation event: freeze every unfrozen flow
                    // crossing `r` at the saturation level.
                    level = s;
                    heap.pop();
                    stats.heap_pops += 1;
                    saturated[r] = true;
                    if want_order {
                        stats.saturation_order.push(r as u32);
                    }
                    for &fi in &adj[adj_off[r]..adj_off[r + 1]] {
                        let i = fi as usize;
                        if !frozen[i] {
                            stats.saturation_freezes += 1;
                            freeze_flow!(i, level, level);
                        }
                    }
                }
            }
        }
        rates
    }

    /// Solve by the naive progressive-filling loop: every round rescans all
    /// flows and resources for the binding increment. Kept verbatim (modulo
    /// weights) as the differential-testing oracle for [`Self::solve`];
    /// worst case O(flows² × path).
    pub fn solve_reference(&self, flows: &[FlowSpec]) -> Vec<f64> {
        let n_res = self.capacities.len();
        let n_flows = flows.len();
        let mut rates = vec![0.0f64; n_flows];
        if n_flows == 0 {
            return rates;
        }
        self.validate(flows);

        let mut remaining = self.capacities.clone();
        // Weighted usage of each unfrozen flow class on each resource.
        let mut active_weight = vec![0.0f64; n_res];
        let mut frozen = vec![false; n_flows];
        for f in flows {
            for r in &f.resources {
                active_weight[r.0] += f.weight;
            }
        }
        // Immediately freeze flows over exhausted resources.
        let mut unfrozen = n_flows;
        for (i, f) in flows.iter().enumerate() {
            if self.prefrozen(f) {
                frozen[i] = true;
                unfrozen -= 1;
                for r in &f.resources {
                    active_weight[r.0] -= f.weight;
                }
            }
        }

        while unfrozen > 0 {
            // The largest uniform increment every unfrozen flow can take.
            let mut delta = f64::INFINITY;
            for r in 0..n_res {
                if active_weight[r] > EPS {
                    delta = delta.min(remaining[r] / active_weight[r]);
                }
            }
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                if let Some(cap) = f.cap {
                    delta = delta.min(cap - rates[i]);
                }
            }
            if !delta.is_finite() {
                // No binding constraint remains (flows with only unlimited
                // resources); nothing more to allocate fairly — stop.
                break;
            }
            let delta = delta.max(0.0);

            // Apply the increment.
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                rates[i] += delta;
                for r in &f.resources {
                    remaining[r.0] -= delta * f.weight;
                }
            }

            // Freeze flows at saturated resources or at their caps.
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let capped = f.cap.is_some_and(|c| rates[i] >= c - EPS);
                let saturated = f.resources.iter().any(|r| remaining[r.0] <= EPS);
                if capped || saturated {
                    frozen[i] = true;
                    unfrozen -= 1;
                    for r in &f.resources {
                        active_weight[r.0] -= f.weight;
                    }
                }
            }
        }
        rates
    }

    /// Total per-member rate over a set of flows in a solved allocation.
    pub fn total(rates: &[f64]) -> f64 {
        rates.iter().sum()
    }

    /// Aggregate rate honoring class weights: `Σ weight × rate`.
    pub fn weighted_total(flows: &[FlowSpec], rates: &[f64]) -> f64 {
        flows.iter().zip(rates).map(|(f, r)| f.weight * r).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assert the event-driven and reference solvers agree on `flows`.
    fn assert_solvers_agree(p: &MaxMinProblem, flows: &[FlowSpec]) -> Vec<f64> {
        let fast = p.solve(flows);
        let slow = p.solve_reference(flows);
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                "flow {i}: event-driven {a} vs reference {b}"
            );
        }
        fast
    }

    #[test]
    fn single_bottleneck_shared_equally() {
        let mut p = MaxMinProblem::new();
        let r = p.add_resource(10.0);
        let flows: Vec<FlowSpec> = (0..5).map(|_| FlowSpec::new(vec![r])).collect();
        let rates = assert_solvers_agree(&p, &flows);
        for rate in &rates {
            assert!((rate - 2.0).abs() < 1e-6, "{rate}");
        }
    }

    #[test]
    fn classic_three_flow_line_network() {
        // Two links of capacity 1. Flow A crosses both, B crosses link 1,
        // C crosses link 2. Max-min: A=0.5, B=0.5, C=0.5.
        let mut p = MaxMinProblem::new();
        let l1 = p.add_resource(1.0);
        let l2 = p.add_resource(1.0);
        let flows = vec![
            FlowSpec::new(vec![l1, l2]),
            FlowSpec::new(vec![l1]),
            FlowSpec::new(vec![l2]),
        ];
        let rates = assert_solvers_agree(&p, &flows);
        assert!((rates[0] - 0.5).abs() < 1e-6);
        assert!((rates[1] - 0.5).abs() < 1e-6);
        assert!((rates[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn asymmetric_bottlenecks() {
        // Link 1 cap 1 shared by A,B; link 2 cap 10 used by B,C.
        // A=B=0.5; C fills the rest of link 2 => 9.5.
        let mut p = MaxMinProblem::new();
        let l1 = p.add_resource(1.0);
        let l2 = p.add_resource(10.0);
        let flows = vec![
            FlowSpec::new(vec![l1]),
            FlowSpec::new(vec![l1, l2]),
            FlowSpec::new(vec![l2]),
        ];
        let rates = assert_solvers_agree(&p, &flows);
        assert!((rates[0] - 0.5).abs() < 1e-6);
        assert!((rates[1] - 0.5).abs() < 1e-6);
        assert!((rates[2] - 9.5).abs() < 1e-6);
    }

    #[test]
    fn flow_caps_release_capacity_to_others() {
        let mut p = MaxMinProblem::new();
        let r = p.add_resource(10.0);
        let flows = vec![FlowSpec::new(vec![r]).with_cap(1.0), FlowSpec::new(vec![r])];
        let rates = assert_solvers_agree(&p, &flows);
        assert!((rates[0] - 1.0).abs() < 1e-6);
        assert!((rates[1] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn zero_capacity_resource_starves_flows() {
        let mut p = MaxMinProblem::new();
        let dead = p.add_resource(0.0);
        let live = p.add_resource(5.0);
        let flows = vec![FlowSpec::new(vec![dead, live]), FlowSpec::new(vec![live])];
        let rates = assert_solvers_agree(&p, &flows);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_resource_entries_count_double() {
        // A flow crossing the same link twice gets half the share.
        let mut p = MaxMinProblem::new();
        let r = p.add_resource(6.0);
        let flows = vec![FlowSpec::new(vec![r, r]), FlowSpec::new(vec![r])];
        let rates = assert_solvers_agree(&p, &flows);
        // Water-filling: both grow at rate t; resource drains at 3t;
        // saturates at t=2: A=2 (uses 4), B=2 (uses 2).
        assert!((rates[0] - 2.0).abs() < 1e-6);
        assert!((rates[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cap_only_flow_is_fine() {
        let p = MaxMinProblem::new();
        let flows = vec![FlowSpec::new(vec![]).with_cap(3.0)];
        let rates = assert_solvers_agree(&p, &flows);
        assert!((rates[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn uncapped_resource_free_flow_panics() {
        let p = MaxMinProblem::new();
        let _ = p.solve(&[FlowSpec::new(vec![])]);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_panics() {
        let mut p = MaxMinProblem::new();
        let r = p.add_resource(1.0);
        let _ = p.solve(&[FlowSpec::new(vec![r]).with_weight(0.0)]);
    }

    #[test]
    fn weighted_class_equals_expanded_members() {
        // One class of weight 7 plus one unit flow == 8 unit flows on the
        // member level, everywhere in the chain.
        let mut p = MaxMinProblem::new();
        let a = p.add_resource(12.0);
        let b = p.add_resource(30.0);
        let classes = vec![
            FlowSpec::new(vec![a, b]).with_weight(7.0),
            FlowSpec::new(vec![b]).with_cap(3.0),
        ];
        let expanded: Vec<FlowSpec> = (0..7)
            .map(|_| FlowSpec::new(vec![a, b]))
            .chain(std::iter::once(FlowSpec::new(vec![b]).with_cap(3.0)))
            .collect();
        let class_rates = assert_solvers_agree(&p, &classes);
        let member_rates = assert_solvers_agree(&p, &expanded);
        assert!((class_rates[0] - member_rates[0]).abs() < 1e-9);
        assert!((class_rates[1] - member_rates[7]).abs() < 1e-9);
        // Conservation including weights.
        let used_a = 7.0 * class_rates[0];
        assert!(used_a <= 12.0 + 1e-6);
        assert!((used_a - 12.0).abs() < 1e-6, "a saturates: {used_a}");
    }

    #[test]
    fn fractional_weights_scale_shares() {
        // Weight acts as a fair-share multiplier at the resource: a class
        // of weight 3 drains 3x faster but each member still gets the
        // common level.
        let mut p = MaxMinProblem::new();
        let r = p.add_resource(8.0);
        let flows = vec![
            FlowSpec::new(vec![r]).with_weight(3.0),
            FlowSpec::new(vec![r]),
        ];
        let rates = assert_solvers_agree(&p, &flows);
        assert!((rates[0] - 2.0).abs() < 1e-6);
        assert!((rates[1] - 2.0).abs() < 1e-6);
        assert!((MaxMinProblem::weighted_total(&flows, &rates) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn conservation_no_resource_oversubscribed() {
        let mut p = MaxMinProblem::new();
        let rs: Vec<ResourceId> = (0..10).map(|i| p.add_resource(1.0 + i as f64)).collect();
        let mut rng = spider_simkit::SimRng::seed_from_u64(1);
        let flows: Vec<FlowSpec> = (0..100)
            .map(|_| {
                let k = 1 + rng.index(4);
                let picked = rng.sample_indices(rs.len(), k);
                FlowSpec::new(picked.into_iter().map(|i| rs[i]).collect())
            })
            .collect();
        let rates = assert_solvers_agree(&p, &flows);
        let mut usage = [0.0; 10];
        for (f, rate) in flows.iter().zip(&rates) {
            for r in &f.resources {
                usage[r.0] += rate;
            }
        }
        for (u, r) in usage.iter().zip(&rs) {
            assert!(*u <= p.capacity(*r) + 1e-6, "resource oversubscribed");
        }
        // Max-min property spot check: every flow is either at a saturated
        // resource or unconstrained.
        for (f, rate) in flows.iter().zip(&rates) {
            let bottlenecked = f
                .resources
                .iter()
                .any(|r| usage[r.0] >= p.capacity(*r) - 1e-6);
            assert!(bottlenecked || *rate > 0.0);
        }
    }

    #[test]
    fn randomized_differential_with_weights_and_dead_resources() {
        let mut rng = spider_simkit::SimRng::seed_from_u64(7);
        for trial in 0..50 {
            let mut p = MaxMinProblem::new();
            let n_res = 1 + rng.index(12);
            let rs: Vec<ResourceId> = (0..n_res)
                .map(|_| {
                    // ~1 in 6 resources is exhausted.
                    let cap = if rng.chance(1.0 / 6.0) {
                        0.0
                    } else {
                        rng.range_f64(0.5, 50.0)
                    };
                    p.add_resource(cap)
                })
                .collect();
            let n_flows = 1 + rng.index(60);
            let flows: Vec<FlowSpec> = (0..n_flows)
                .map(|_| {
                    let k = 1 + rng.index(4);
                    let path: Vec<ResourceId> = (0..k).map(|_| rs[rng.index(n_res)]).collect();
                    let mut f = FlowSpec::new(path);
                    if rng.chance(0.5) {
                        f = f.with_cap(rng.range_f64(0.05, 10.0));
                    }
                    if rng.chance(0.5) {
                        f = f.with_weight(rng.range_f64(0.5, 20.0));
                    }
                    f
                })
                .collect();
            let _ = assert_solvers_agree(&p, &flows);
            let _ = trial;
        }
    }

    #[test]
    fn scale_smoke_20k_flows() {
        // Titan-scale: 18,688 clients over ~3,000 resources solves quickly.
        let mut p = MaxMinProblem::new();
        let res: Vec<ResourceId> = (0..3_000).map(|_| p.add_resource(100.0)).collect();
        let flows: Vec<FlowSpec> = (0..20_000)
            .map(|i| {
                FlowSpec::new(vec![res[i % 440], res[440 + i % 288], res[1000 + i % 2000]])
                    .with_cap(5.0)
            })
            .collect();
        let rates = p.solve(&flows);
        assert_eq!(rates.len(), 20_000);
        assert!(rates.iter().all(|r| *r > 0.0));
    }

    #[test]
    fn solve_stats_account_for_every_flow() {
        let mut p = MaxMinProblem::new();
        let dead = p.add_resource(0.0);
        let l1 = p.add_resource(1.0);
        let l2 = p.add_resource(10.0);
        let flows = vec![
            FlowSpec::new(vec![l1, l2]),
            FlowSpec::new(vec![l1]),
            FlowSpec::new(vec![l2]).with_cap(0.1),
            FlowSpec::new(vec![dead]),
        ];
        let (rates, stats) = p.solve_with_stats(&flows);
        assert_eq!(rates, p.solve(&flows));
        assert_eq!(stats.flows, 4);
        // Every flow ends frozen exactly once, by exactly one cause.
        assert_eq!(
            stats.prefrozen + stats.cap_freezes + stats.saturation_freezes,
            4
        );
        assert_eq!(stats.prefrozen, 1);
        assert_eq!(stats.cap_freezes, 1);
        assert_eq!(stats.saturation_freezes, 2);
        assert!(stats.rounds >= 2);
        assert!(stats.heap_pops <= stats.heap_pushes);
        // l1 saturates (0.5 + 0.5); l2 never does (0.5 + 0.1 < 10).
        assert_eq!(stats.saturation_order, vec![l1.0 as u32]);
    }

    #[test]
    fn flow_components_partition_by_shared_resources() {
        let mut p = MaxMinProblem::new();
        let dead = p.add_resource(0.0);
        let a1 = p.add_resource(1.0);
        let a2 = p.add_resource(2.0);
        let b1 = p.add_resource(3.0);
        let flows = vec![
            FlowSpec::new(vec![a1]),             // component A
            FlowSpec::new(vec![b1]),             // component B
            FlowSpec::new(vec![a2, a1]),         // bridges a1-a2 into A
            FlowSpec::new(vec![]).with_cap(1.0), // cap-only singleton
            FlowSpec::new(vec![dead, b1]),       // prefrozen singleton (dead res)
            FlowSpec::new(vec![a2]),             // component A via a2
        ];
        let groups = p.flow_components(&flows);
        assert_eq!(groups, vec![vec![0, 2, 5], vec![1], vec![3], vec![4]]);
        let (_, stats) = p.solve_with_stats(&flows);
        assert_eq!(stats.components, 4);
        assert_eq!(stats.largest_component, 3);
        assert_eq!(stats.flows, 6);
        assert_eq!(stats.prefrozen, 1);
    }

    #[test]
    fn component_solve_is_bitwise_identical_to_global() {
        // Randomized multi-component problems: paths drawn within disjoint
        // resource blocks plus occasional full-range paths that merge
        // blocks, solved decomposed vs undecomposed, compared to_bits().
        let mut rng = spider_simkit::SimRng::seed_from_u64(23);
        for _ in 0..40 {
            let mut p = MaxMinProblem::new();
            let blocks = 2 + rng.index(4);
            let per_block = 2 + rng.index(4);
            let rs: Vec<ResourceId> = (0..blocks * per_block)
                .map(|_| {
                    let cap = if rng.chance(0.1) {
                        0.0
                    } else {
                        rng.range_f64(0.5, 40.0)
                    };
                    p.add_resource(cap)
                })
                .collect();
            let n_flows = 1 + rng.index(50);
            let flows: Vec<FlowSpec> = (0..n_flows)
                .map(|_| {
                    let k = 1 + rng.index(3);
                    let path: Vec<ResourceId> = if rng.chance(0.05) {
                        // Rare block-spanning flow.
                        (0..k).map(|_| rs[rng.index(rs.len())]).collect()
                    } else {
                        let b = rng.index(blocks);
                        (0..k)
                            .map(|_| rs[b * per_block + rng.index(per_block)])
                            .collect()
                    };
                    let mut f = FlowSpec::new(path);
                    if rng.chance(0.4) {
                        // Coarse caps make equal-cap ties common, pinning
                        // the (cap, position) tie-break.
                        f = f.with_cap(f64::from(1 + rng.index(3) as u32));
                    }
                    if rng.chance(0.4) {
                        f = f.with_weight(rng.range_f64(0.5, 8.0));
                    }
                    f
                })
                .collect();
            let decomposed: Vec<u64> = p.solve(&flows).iter().map(|r| r.to_bits()).collect();
            let global: Vec<u64> = p.solve_global(&flows).iter().map(|r| r.to_bits()).collect();
            assert_eq!(decomposed, global);
            let reference = p.solve_reference(&flows);
            for (a, b) in p.solve(&flows).iter().zip(&reference) {
                assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn single_component_takes_the_global_fast_path_with_zero_overhead() {
        // One coupled component: the decomposed entry point must run the
        // undecomposed core directly — identical rates AND identical event
        // counters (no extra rounds, pushes, or pops from decomposition).
        let mut p = MaxMinProblem::new();
        let rs: Vec<ResourceId> = (0..8).map(|i| p.add_resource(2.0 + i as f64)).collect();
        let flows: Vec<FlowSpec> = (0..40)
            .map(|i| {
                // Consecutive resources chain every flow into one component.
                FlowSpec::new(vec![rs[i % 8], rs[(i + 1) % 8]]).with_weight(1.0 + (i % 5) as f64)
            })
            .collect();
        let (rates, mut stats) = p.solve_with_stats(&flows);
        let (global_rates, global_stats) = p.solve_global_with_stats(&flows);
        let bits: Vec<u64> = rates.iter().map(|r| r.to_bits()).collect();
        let global_bits: Vec<u64> = global_rates.iter().map(|r| r.to_bits()).collect();
        assert_eq!(bits, global_bits);
        assert_eq!(stats.components, 1);
        assert_eq!(stats.largest_component, 40);
        // Modulo the component counters (which the oracle never fills), the
        // event counters must be *equal*, not merely consistent.
        stats.components = 0;
        stats.largest_component = 0;
        assert_eq!(stats, global_stats);
    }

    #[test]
    fn scale_with_distinct_caps_matches_reference() {
        // The reference solver's adversarial shape: many distinct caps force
        // it through one full rescan per freeze. Differential at a size
        // where the oracle is still tractable.
        let mut p = MaxMinProblem::new();
        let res: Vec<ResourceId> = (0..300)
            .map(|i| p.add_resource(50.0 + (i % 5) as f64))
            .collect();
        let flows: Vec<FlowSpec> = (0..2_000)
            .map(|i| {
                FlowSpec::new(vec![res[i % 44], res[44 + i % 28], res[100 + i % 200]])
                    .with_cap(0.5 + (i as f64) * 1e-3)
            })
            .collect();
        let _ = assert_solvers_agree(&p, &flows);
    }
}
