//! The acquisition benchmark suite, as shipped to bidding vendors (§III-B).
//!
//! Runs the `fair-lio` block-level parameter sweep over a vendor's proposed
//! SSU and the `obdfilter-survey` file-system-level pass, then prints the
//! evaluation summary an RFP reviewer would read — including whether the
//! offered building block scales to the system-level requirements.
//!
//! ```text
//! cargo run --release --example acquisition_benchmark
//! ```

use spider::pfs::oss::{ObjectStorageServer, OssId};
use spider::pfs::ost::{Ost, OstId};
use spider::prelude::*;
use spider::storage::blockbench::{measure_group, measure_ssu, BlockProfile, BlockSweep};
use spider::storage::ssu::{Ssu, SsuId, SsuSpec};
use spider::workload::obdsurvey::run_obdsurvey;

fn main() {
    // The vendor's offered SSU (as-delivered disk population, slow tail
    // included — acceptance testing is the buyer's problem, see E4).
    let spec = SsuSpec::spider2_upgraded();
    let mut rng = SimRng::seed_from_u64(2013);
    let ssu = Ssu::sample(SsuId(0), &spec, 0, &mut rng);
    println!(
        "offered SSU: {} disks in {} RAID-6 groups, {} usable",
        spec.disks_per_ssu(),
        ssu.groups.len(),
        spider::simkit::units::fmt_bytes(ssu.capacity())
    );

    // Headline numbers the SOW asks for.
    let seq = measure_ssu(&ssu, &BlockProfile::seq_write(MIB));
    let mix = measure_ssu(&ssu, &BlockProfile::production_mix(MIB));
    println!("sequential write (1 MiB, QD16): {seq}");
    println!("production mix  (1 MiB, QD16, 60/40 W/R random): {mix}");
    println!(
        "-> 36 SSUs scale to {:.2} TB/s sequential, {:.0} GB/s mixed-random",
        seq.as_tb_per_sec() * 36.0,
        mix.as_gb_per_sec() * 36.0
    );

    // The full sweep, condensed: best and worst parameter points.
    let rows = BlockSweep::acquisition().run_ssu(&ssu);
    let best = rows
        .iter()
        .max_by(|a, b| a.bandwidth.partial_cmp(&b.bandwidth).unwrap())
        .unwrap();
    let worst = rows
        .iter()
        .min_by(|a, b| a.bandwidth.partial_cmp(&b.bandwidth).unwrap())
        .unwrap();
    println!(
        "sweep: {} points; best {} at {:?}; worst {} at {:?}",
        rows.len(),
        best.bandwidth,
        (
            best.profile.io_size,
            best.profile.queue_depth,
            best.profile.random
        ),
        worst.bandwidth,
        (
            worst.profile.io_size,
            worst.profile.queue_depth,
            worst.profile.random
        ),
    );

    // File-system-level pass: obdfilter overhead on one OST.
    let ost = Ost::new(OstId(0), ssu.groups[0].clone());
    let oss = ObjectStorageServer::spider2(OssId(0), vec![OstId(0)]);
    let survey = run_obdsurvey(&ost, &oss, &[256 << 10, MIB, 4 * MIB]);
    println!(
        "obdfilter-survey worst-case software overhead: {:.1}%",
        survey.max_overhead() * 100.0
    );

    // The LL2 warning, demonstrated at the RAID-group level (where the
    // controller cap does not mask the disks): peak sequential is NOT a
    // proxy for delivered performance under the production mix.
    let group_seq = measure_group(&ssu.groups[0], &BlockProfile::seq_write(MIB));
    let group_mix = measure_group(&ssu.groups[0], &BlockProfile::production_mix(MIB));
    println!(
        "per-group random-mix/sequential ratio {:.0}% — size the system on random performance (LL2)",
        group_mix.as_bytes_per_sec() / group_seq.as_bytes_per_sec() * 100.0
    );
}
