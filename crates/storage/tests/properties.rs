//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use spider_simkit::{SimRng, MIB};
use spider_storage::disk::{Disk, DiskId, DiskPopulationSpec, DiskSpec};
use spider_storage::enclosure::{EnclosureId, EnclosureLayout, EnclosureSet};
use spider_storage::raid::{RaidConfig, RaidGroup, RaidGroupId, RaidState};

fn sampled_group(seed: u64) -> RaidGroup {
    let mut rng = SimRng::seed_from_u64(seed);
    RaidGroup::sample(
        RaidGroupId(0),
        RaidConfig::raid6_8p2(),
        &DiskPopulationSpec::default(),
        0,
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of member failures leaves the group in a consistent
    /// state: within-parity losses keep it serving; beyond-parity is
    /// failure; restore undoes isolation but never resurrects a failed
    /// group's data.
    #[test]
    fn raid_failure_sequences_are_consistent(
        seed in any::<u64>(),
        ops in prop::collection::vec((0u8..2, 0usize..10), 1..25),
    ) {
        let mut g = sampled_group(seed);
        let mut down: std::collections::HashSet<usize> = Default::default();
        let mut ever_failed = false;
        for (op, member) in ops {
            match op {
                0 => {
                    g.isolate_member(member);
                    if !ever_failed {
                        down.insert(member);
                    }
                }
                _ => {
                    g.restore_member(member);
                    if !ever_failed {
                        down.remove(&member);
                    }
                }
            }
            ever_failed |= g.state() == RaidState::Failed;
            if ever_failed {
                prop_assert_eq!(g.state(), RaidState::Failed, "failure is permanent");
                prop_assert!(g.write_bandwidth(MIB, true).is_zero());
            } else {
                match down.len() {
                    0 => prop_assert_eq!(g.state(), RaidState::Optimal),
                    n if n <= 2 => prop_assert_eq!(g.state(), RaidState::Degraded(n)),
                    _ => unreachable!("would have failed"),
                }
                prop_assert!(!g.read_bandwidth(MIB, true).is_zero());
            }
        }
    }

    /// Group bandwidth is monotone in request size for aligned sequential
    /// writes and never exceeds the streaming bound.
    #[test]
    fn raid_bandwidth_bounds(seed in any::<u64>(), mult in 1u64..32) {
        let g = sampled_group(seed);
        let stream = g.streaming_bandwidth();
        let aligned = g.write_bandwidth(mult * MIB, true);
        prop_assert!(aligned.as_bytes_per_sec() <= stream.as_bytes_per_sec() * 1.0001);
        let partial = g.write_bandwidth(mult * MIB + 4096, true);
        prop_assert!(partial.as_bytes_per_sec() <= aligned.as_bytes_per_sec() + 1.0);
    }

    /// Enclosure offline/online round-trips preserve group state for
    /// groups that never exceeded parity.
    #[test]
    fn enclosure_roundtrip_preserves_healthy_groups(
        seed in any::<u64>(),
        enclosure in 0u32..5,
    ) {
        let mut groups = vec![sampled_group(seed)];
        let mut set = EnclosureSet::new(EnclosureLayout::spider1());
        let before = groups[0].streaming_bandwidth().as_bytes_per_sec();
        let failed = set.take_offline(EnclosureId(enclosure), &mut groups);
        prop_assert!(failed.is_empty(), "healthy group tolerates one enclosure");
        set.bring_online(EnclosureId(enclosure), &mut groups);
        prop_assert_eq!(groups[0].state(), RaidState::Optimal);
        let after = groups[0].streaming_bandwidth().as_bytes_per_sec();
        prop_assert!((before - after).abs() < 1e-6);
    }

    /// Sampled disks are always within the modeled performance range.
    #[test]
    fn disk_sampling_range(seed in any::<u64>(), n in 1u32..100) {
        let pop = DiskPopulationSpec::default();
        let mut rng = SimRng::seed_from_u64(seed);
        for i in 0..n {
            let d = Disk::sample(DiskId(i), &pop, &mut rng);
            let f = d.speed_factor();
            prop_assert!((0.5..=1.05).contains(&f), "{f}");
            // Random never beats sequential.
            prop_assert!(
                d.random_bandwidth(MIB).as_bytes_per_sec()
                    <= d.seq_bandwidth().as_bytes_per_sec()
            );
        }
    }

    /// Service time is additive-consistent: bigger requests take longer.
    #[test]
    fn disk_service_time_monotone(size_a in 1u64..(64 * MIB), size_b in 1u64..(64 * MIB)) {
        let d = Disk::nominal(DiskId(0), DiskSpec::nearline_sas_2tb());
        let (small, large) = if size_a <= size_b { (size_a, size_b) } else { (size_b, size_a) };
        prop_assert!(d.service_time(small, false) <= d.service_time(large, false));
        prop_assert!(d.service_time(small, true) >= d.service_time(small, false));
    }
}
