//! E20 — §VI-B telemetry engine: event-driven vs fixed-step solving.
//!
//! The operator-visible logs (DDN poller shape, IOSI input) come from
//! `run_timestep`. The legacy engine re-solved the whole max-min allocation
//! every 5 s wall step even when nothing changed; the event-driven engine
//! jumps between job arrivals and completions, so a checkpoint storm of
//! periodic identical waves costs O(#job events) solves instead of
//! O(horizon / step). This driver runs the same storm under both modes and
//! reports the solve counts and the fidelity of the cheap path — completions
//! must agree within one log interval and moved bytes must match exactly.
//!
//! The third engine cashes in the solver's component decomposition: the
//! storm alternates namespaces, and the two namespaces share no capacitated
//! resource, so the run splits into independent **router zones** — one
//! `ShardedEngine` shard each, private event loop, private resident
//! session, zero cross-shard messages, the whole horizon as the lookahead.
//! A zone's job events no longer cost anything in the other zone — not even
//! a memo probe — so the sharded engine executes no more water-filling
//! rounds than the global event loop while matching its completions within
//! the same one-log-interval bound.
//!
//! Tables deliberately contain no wall-clock numbers (the determinism
//! contract); wall-time speedups live in `BENCH_timestep.json` and
//! `BENCH_components.json`.

use spider_simkit::{SimDuration, SimTime, MIB};

use crate::center::Center;
use crate::config::{CenterConfig, Scale};
use crate::report::Table;
use crate::timestep::{run_timestep, run_timestep_sharded, Job, SteppingMode, TimestepConfig};

/// The checkpoint storm: `waves` waves, `jobs_per_wave` identical jobs each,
/// one wave every `period`.
fn storm(waves: u64, jobs_per_wave: u32, period: SimDuration) -> Vec<Job> {
    let mut jobs = Vec::new();
    for w in 0..waves {
        for k in 0..jobs_per_wave {
            jobs.push(Job {
                // Alternate namespaces so the storm exercises the shared
                // router plant, not just one filesystem.
                fs: (k % 2) as usize,
                clients: 16,
                // ~156 s of drain per wave: ~31 fixed 5 s steps, but still
                // a single analytic jump for the event engine.
                bytes_per_client: 8 << 30,
                transfer_size: MIB,
                start: SimTime::ZERO + period * w,
                write: true,
                optimal_placement: false,
            });
        }
    }
    jobs
}

/// Run E20.
pub fn run(scale: Scale) -> Vec<Table> {
    let (waves, jobs_per_wave, horizon) = match scale {
        Scale::Paper => (20u64, 10u32, SimDuration::from_hours(2)),
        Scale::Small => (6, 4, SimDuration::from_mins(36)),
    };
    let center = Center::build(CenterConfig::small());
    let jobs = storm(waves, jobs_per_wave, SimDuration::from_mins(6));
    let cfg = TimestepConfig {
        horizon,
        ..TimestepConfig::default()
    };
    let ev = run_timestep(&center, &jobs, &cfg);
    let fx = run_timestep(
        &center,
        &jobs,
        &TimestepConfig {
            mode: SteppingMode::FixedStep,
            ..cfg.clone()
        },
    );
    let (sh, pdes) = run_timestep_sharded(&center, &jobs, &cfg);

    let mut cost = Table::new(
        "E20a: solver cost for the checkpoint storm (no wall-clock; see BENCH_timestep.json)",
        &[
            "engine",
            "max-min solves",
            "time advances",
            "solves vs fixed",
        ],
    );
    cost.row(vec![
        "fixed-step (5 s)".into(),
        fx.solves.to_string(),
        fx.steps.to_string(),
        "1.0x".into(),
    ]);
    cost.row(vec![
        "event-driven".into(),
        ev.solves.to_string(),
        ev.steps.to_string(),
        format!("{:.1}x fewer", fx.solves as f64 / ev.solves.max(1) as f64),
    ]);
    cost.row(vec![
        format!("sharded ({} router zones)", pdes.shards),
        sh.solves.to_string(),
        sh.steps.to_string(),
        format!("{:.1}x fewer", fx.solves as f64 / sh.solves.max(1) as f64),
    ]);

    let mut gap_ns = 0u64;
    let mut finished = 0usize;
    let mut bytes_equal = true;
    for (i, (a, b)) in ev.completions.iter().zip(&fx.completions).enumerate() {
        if let (Some(a), Some(b)) = (a, b) {
            finished += 1;
            gap_ns = gap_ns.max(a.since(*b).max(b.since(*a)).as_nanos());
        }
        bytes_equal &= ev.bytes_moved[i] == fx.bytes_moved[i];
    }
    let mut fidelity = Table::new(
        "E20b: event-driven fidelity vs the fixed-step oracle",
        &["metric", "value", "bound"],
    );
    fidelity.row(vec![
        "jobs finished (both engines)".into(),
        format!("{finished}/{}", jobs.len()),
        jobs.len().to_string(),
    ]);
    fidelity.row(vec![
        "max completion gap (s)".into(),
        format!("{:.3}", gap_ns as f64 / 1e9),
        format!("{:.0} (one log interval)", cfg.log_interval.as_secs_f64()),
    ]);
    fidelity.row(vec![
        "per-job bytes identical".into(),
        bytes_equal.to_string(),
        "true".into(),
    ]);

    // The sharded engine cuts the timeline at different event points than
    // the global event loop, so bytes agree to rounding, not bitwise.
    let mut sh_gap_ns = 0u64;
    let mut sh_finished = 0usize;
    let mut sh_bytes_delta = 0u64;
    for (i, (a, b)) in ev.completions.iter().zip(&sh.completions).enumerate() {
        if let (Some(a), Some(b)) = (a, b) {
            sh_finished += 1;
            sh_gap_ns = sh_gap_ns.max(a.since(*b).max(b.since(*a)).as_nanos());
        }
        sh_bytes_delta = sh_bytes_delta.max(ev.bytes_moved[i].abs_diff(sh.bytes_moved[i]));
    }
    let mut zones = Table::new(
        "E20c: router-zone sharding of the flow engine (shard-per-component)",
        &["metric", "value", "bound"],
    );
    zones.row(vec![
        "router zones (shards)".into(),
        pdes.shards.to_string(),
        "2 (one per namespace)".into(),
    ]);
    zones.row(vec![
        "epoch barriers".into(),
        pdes.epochs.to_string(),
        "1 (horizon lookahead)".into(),
    ]);
    zones.row(vec![
        "cross-shard messages".into(),
        pdes.cross_messages.to_string(),
        "0 (independent zones)".into(),
    ]);
    // Per-zone solve counts sum over shards (coincident wave events solve
    // once per zone), so the comparable work metric is water-filling rounds:
    // a shard never even probes the other zone's memo, and within a zone the
    // event and sharded sessions see identical shapes.
    let ev_rounds = ev.solver.as_ref().map_or(0, |s| s.rounds_executed);
    let sh_rounds = sh.solver.as_ref().map_or(0, |s| s.rounds_executed);
    zones.row(vec![
        "solve rounds vs event-driven".into(),
        format!("{sh_rounds}/{ev_rounds}"),
        "no more than event-driven".into(),
    ]);
    zones.row(vec![
        "jobs finished (both engines)".into(),
        format!("{sh_finished}/{}", jobs.len()),
        jobs.len().to_string(),
    ]);
    zones.row(vec![
        "max completion gap vs event-driven (s)".into(),
        format!("{:.3}", sh_gap_ns as f64 / 1e9),
        format!("{:.0} (one log interval)", cfg.log_interval.as_secs_f64()),
    ]);
    zones.row(vec![
        "max per-job bytes delta".into(),
        sh_bytes_delta.to_string(),
        "<= 2 (completion rounding)".into(),
    ]);
    super::trace::experiment("E20", 1, 3);
    vec![cost, fidelity, zones]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e20_event_driven_cuts_solves_by_an_order_of_magnitude() {
        let tables = run(Scale::Small);
        let fixed: f64 = tables[0].rows[0][1].parse().unwrap();
        let event: f64 = tables[0].rows[1][1].parse().unwrap();
        assert!(
            fixed >= 10.0 * event,
            "fixed {fixed} vs event {event} solves"
        );
    }

    #[test]
    fn e20_fidelity_holds() {
        let tables = run(Scale::Small);
        let finished = tables[1].rows[0][1].clone();
        let (done, total) = finished.split_once('/').unwrap();
        assert_eq!(done, total, "every job finishes under both engines");
        let gap: f64 = tables[1].rows[1][1].parse().unwrap();
        let bound: f64 = 10.0;
        assert!(gap <= bound, "completion gap {gap}s exceeds {bound}s");
        assert_eq!(tables[1].rows[2][1], "true");
    }

    #[test]
    fn e20_sharded_zone_engine_is_faithful_and_message_free() {
        let tables = run(Scale::Small);
        let zones = &tables[2];
        assert_eq!(zones.rows[0][1], "2", "one shard per namespace");
        assert_eq!(zones.rows[1][1], "1", "a single epoch window");
        assert_eq!(zones.rows[2][1], "0", "no cross-shard traffic");
        let (sh, ev) = zones.rows[3][1].split_once('/').unwrap();
        let (sh, ev): (u64, u64) = (sh.parse().unwrap(), ev.parse().unwrap());
        assert!(sh <= ev, "sharded {sh} vs event {ev} solve rounds");
        let (done, total) = zones.rows[4][1].split_once('/').unwrap();
        assert_eq!(done, total, "every job finishes under both engines");
        let gap: f64 = zones.rows[5][1].parse().unwrap();
        assert!(
            gap <= 10.0,
            "completion gap {gap}s exceeds one log interval"
        );
        let delta: u64 = zones.rows[6][1].parse().unwrap();
        assert!(delta <= 2, "bytes delta {delta}");
    }
}
