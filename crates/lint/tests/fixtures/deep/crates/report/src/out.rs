//! Deep fixture: deterministic-output sinks fed by chains of every shape
//! the analysis distinguishes: direct, two-hop, barrier-interrupted,
//! escape-suppressed, and callee-barriered.

use spider_engine::mid::assemble;
use spider_engine::par::{audited_sums, merged_sums, shard_sums};

/// VIOLATION (direct): tainted shard sums straight into a table row.
pub fn direct_sink(t: &mut Table, v: &[f64]) {
    let rows = shard_sums(v);
    t.row(rows);
}

/// VIOLATION (two hops): the taint rides through `assemble` untouched.
pub fn two_hop_sink(t: &mut Table, v: &[f64]) {
    let rows = assemble(v);
    t.row(rows);
}

/// CLEAN: a canonical sort between the tainted call and the sink.
pub fn barrier_sink(t: &mut Table, v: &[f64]) {
    let mut rows = shard_sums(v);
    rows.sort_by(|a, b| a.total_cmp(b));
    t.row(rows);
}

/// CLEAN: the callee reduced through `tree_merge` before returning.
pub fn merged_sink(t: &mut Table, v: &[f64]) {
    t.row(vec![merged_sums(v)]);
}

/// ALLOWED: the flow is real but audited at the sink hop.
pub fn audited_sink(t: &mut Table, v: &[f64]) {
    let rows = shard_sums(v);
    // spider-lint: allow(taint-path, reason = "fixture: rows are keyed, and the table sorts on insert")
    t.row(rows);
}

/// CLEAN: the source itself carries the audit, so no path is reported.
pub fn source_escaped_sink(t: &mut Table, v: &[f64]) {
    t.row(audited_sums(v));
}
