//! Parallel, deterministic Monte Carlo replication engine.
//!
//! At Spider II's real failure rates a single simulated fleet-year observes
//! essentially zero data-loss events; turning the simulated reliability
//! columns into *estimates with confidence intervals* takes 1e4–1e6
//! replications. This module makes that a throughput problem we can win:
//!
//! - **Counter-based replication streams.** Replication `i` of a study
//!   seeded with `s` draws from [`SimRng::stream`]`(s, i)` — a pure function
//!   of `(s, i)` — so the randomness a replication sees does not depend on
//!   which thread ran it, in what order, or how many replications surround
//!   it.
//! - **Fixed-shape reduction.** Per-replication results are merged within
//!   fixed-size batches in index order, batch partials are collected in
//!   input order (`par_iter().map(..).collect()` preserves order; that is
//!   also what keeps the reduction clean under spider-lint's
//!   `par-float-reduce` rule), and the partials are folded by a pairwise
//!   binary tree whose shape depends only on the batch count. Float
//!   accumulation order is therefore a function of the configuration alone:
//!   output is **bit-identical across rayon thread counts**, enforced by
//!   `tests/montecarlo_threads.rs`.
//! - **Mergeable accumulators.** Anything implementing [`Merge`] can ride
//!   the reduction: [`OnlineStats`] (Welford merge), counters, tuples and
//!   vectors of the above.
//!
//! Common-random-number pairing across scenarios falls out of the stream
//! design: a study that must compare scenario A against scenario B under
//! identical randomness clones its replication RNG (`rng.clone()`) once per
//! scenario, so both consume the same draws and the paired difference has
//! far lower variance than two independent estimates.

use rayon::prelude::*;

use crate::{OnlineStats, SimRng};

/// Accumulators that can absorb another instance of themselves.
///
/// `merge` must be associative up to float tolerance (exact for integer
/// counters); the engine fixes the merge *order*, so commutativity is not
/// required for determinism.
pub trait Merge {
    /// Fold `other` into `self`.
    fn merge(&mut self, other: Self);
}

impl Merge for u64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

impl Merge for f64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

impl Merge for OnlineStats {
    fn merge(&mut self, other: Self) {
        OnlineStats::merge(self, &other);
    }
}

/// Element-wise merge; both sides must have the same length.
impl<T: Merge> Merge for Vec<T> {
    fn merge(&mut self, other: Self) {
        assert_eq!(self.len(), other.len(), "merging vectors of unequal length");
        for (a, b) in self.iter_mut().zip(other) {
            a.merge(b);
        }
    }
}

macro_rules! impl_merge_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Merge),+> Merge for ($($name,)+) {
            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }
        }
    };
}

impl_merge_tuple!(A: 0);
impl_merge_tuple!(A: 0, B: 1);
impl_merge_tuple!(A: 0, B: 1, C: 2);
impl_merge_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Configuration of a replication run.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Master seed; replication `i` draws from `SimRng::stream(seed, i)`.
    pub seed: u64,
    /// Number of replications (must be >= 1).
    pub replications: u64,
    /// Replications merged sequentially per batch. Part of the result's
    /// identity: changing it changes the float reduction tree (never the
    /// integer counters). It does NOT depend on the thread count.
    pub batch: u64,
}

impl McConfig {
    /// `replications` replications from `seed` with the default batch size.
    pub fn new(seed: u64, replications: u64) -> Self {
        McConfig {
            seed,
            replications,
            batch: 64,
        }
    }

    /// Override the batch size (for studies whose per-replication cost is
    /// far from the default's sweet spot).
    #[must_use]
    pub fn with_batch(mut self, batch: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch = batch;
        self
    }
}

/// The merged accumulator plus the run shape (for observability: one span
/// per batch, counters for replications run).
#[derive(Debug, Clone)]
pub struct McRun<A> {
    /// The tree-reduced accumulator over all replications.
    pub value: A,
    /// Replications executed.
    pub replications: u64,
    /// Batches the replications were grouped into.
    pub batches: u64,
    /// Configured batch size (the last batch may be smaller).
    pub batch: u64,
}

/// Fan `cfg.replications` replications of `study` across rayon and reduce
/// the per-replication accumulators deterministically.
///
/// `study` receives the replication index and a mutable reference to that
/// replication's private RNG stream. Its return value is merged in
/// replication order within each batch; batches are reduced by
/// [`tree_merge`]. The whole computation is bit-identical for a fixed
/// `McConfig` regardless of thread count or scheduling.
pub fn replicate<A, F>(cfg: &McConfig, study: F) -> McRun<A>
where
    A: Merge + Send,
    F: Fn(u64, &mut SimRng) -> A + Sync,
{
    assert!(cfg.replications > 0, "need at least one replication");
    assert!(cfg.batch > 0, "batch size must be positive");
    let batch_ids: Vec<u64> = (0..cfg.replications.div_ceil(cfg.batch)).collect();
    let partials: Vec<A> = batch_ids
        .par_iter()
        .map(|&b| {
            let lo = b * cfg.batch;
            let hi = (lo + cfg.batch).min(cfg.replications);
            let mut acc: Option<A> = None;
            for i in lo..hi {
                let mut rng = SimRng::stream(cfg.seed, i);
                let r = study(i, &mut rng);
                match &mut acc {
                    None => acc = Some(r),
                    Some(a) => a.merge(r),
                }
            }
            acc.expect("batch index ranges are non-empty")
        })
        .collect();
    let batches = partials.len() as u64;
    McRun {
        value: tree_merge(partials),
        replications: cfg.replications,
        batches,
        batch: cfg.batch,
    }
}

/// Reduce a non-empty vector by a fixed pairwise binary tree: adjacent pairs
/// merge, halving the layer until one value remains. The tree shape is a
/// function of `items.len()` only, so float reductions through it are
/// reproducible by construction.
pub fn tree_merge<A: Merge>(items: Vec<A>) -> A {
    assert!(!items.is_empty(), "cannot reduce an empty vector");
    let mut layer = items;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge(b);
            }
            next.push(a);
        }
        layer = next;
    }
    layer.pop().expect("reduction of a non-empty vector")
}

/// A point estimate with a symmetric 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean across replications.
    pub mean: f64,
    /// Normal-approximation 95% half-width (`1.96 * sem`).
    pub half_width: f64,
    /// Replications the estimate is based on.
    pub n: u64,
}

impl Estimate {
    /// Summarize a replication-level accumulator.
    pub fn of(stats: &OnlineStats) -> Estimate {
        Estimate {
            mean: stats.mean(),
            half_width: stats.ci95_half_width(),
            n: stats.count(),
        }
    }

    /// Lower CI bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper CI bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval covers `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo() <= x && x <= self.hi()
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3e} ± {:.1e}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_exact_for_any_batch_size() {
        for batch in [1, 3, 64, 1000] {
            let cfg = McConfig::new(1, 100).with_batch(batch);
            let run = replicate(&cfg, |i, _| i);
            assert_eq!(run.value, 4950, "batch {batch}");
            assert_eq!(run.replications, 100);
            assert_eq!(run.batches, 100u64.div_ceil(batch));
        }
    }

    #[test]
    fn runs_are_bit_identical() {
        let cfg = McConfig::new(9, 500);
        let study = |_: u64, rng: &mut SimRng| OnlineStats::from_iter([rng.exp(2.0)]);
        let a = replicate(&cfg, study);
        let b = replicate(&cfg, study);
        assert_eq!(a.value.mean().to_bits(), b.value.mean().to_bits());
        assert_eq!(a.value.variance().to_bits(), b.value.variance().to_bits());
        assert_eq!(a.value.count(), b.value.count());
    }

    #[test]
    fn replications_see_independent_streams() {
        // If all replications shared one stream, every observation would be
        // equal; independent streams give a sample with real spread.
        let cfg = McConfig::new(4, 2000);
        let run = replicate(&cfg, |_, rng| OnlineStats::from_iter([rng.exp(3.0)]));
        assert_eq!(run.value.count(), 2000);
        assert!(
            (run.value.mean() - 3.0).abs() < 0.25,
            "{}",
            run.value.mean()
        );
        assert!(run.value.std_dev() > 1.0, "spread {}", run.value.std_dev());
        // And the CI machinery sits on top.
        let est = Estimate::of(&run.value);
        assert!(est.contains(3.0), "{est}");
        assert!(est.half_width < 0.3);
    }

    #[test]
    fn study_indices_cover_the_range_once() {
        let cfg = McConfig::new(0, 257).with_batch(16);
        let run = replicate(&cfg, |i, _| {
            let mut v = vec![0u64; 257];
            v[i as usize] = 1;
            v
        });
        assert!(run.value.iter().all(|&c| c == 1), "{:?}", run.value);
    }

    #[test]
    fn tree_merge_matches_sequential_for_stats() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37).collect();
        let whole = OnlineStats::from_iter(xs.iter().copied());
        let leaves: Vec<OnlineStats> = xs.iter().map(|&x| OnlineStats::from_iter([x])).collect();
        let merged = tree_merge(leaves);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn tuple_and_vec_accumulators_merge_fieldwise() {
        let cfg = McConfig::new(2, 64).with_batch(8);
        let run = replicate(&cfg, |i, rng| {
            (i, OnlineStats::from_iter([rng.f64()]), vec![1u64, i])
        });
        assert_eq!(run.value.0, 2016); // sum 0..64
        assert_eq!(run.value.1.count(), 64);
        assert_eq!(run.value.2[0], 64);
        assert_eq!(run.value.2[1], 2016);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_is_a_logic_error() {
        let cfg = McConfig::new(0, 0);
        let _ = replicate(&cfg, |i, _| i);
    }
}
