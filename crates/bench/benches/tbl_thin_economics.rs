//! Bench for E13 (thin file system QA) and E14 (center economics).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spider_core::config::Scale;
use spider_core::experiments::{e13_thin_fs, e14_economics};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tbl_thin_economics");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    g.bench_function("experiment_e13", |b| {
        b.iter(|| black_box(e13_thin_fs::run(Scale::Small)));
    });
    g.bench_function("experiment_e14", |b| {
        b.iter(|| black_box(e14_economics::run(Scale::Small)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
