//! Diagnostics: the linter's output type plus human and JSON renderers.
//!
//! The JSON writer is a ~30-line escape routine rather than a serde
//! dependency — the report schema is flat and versioned, and keeping the
//! crate dependency-free means it can never be broken by the very lockfile
//! churn it polices.

/// One hop of a deep-analysis source→sink path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Workspace-relative path of this hop.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What happens at this hop (`source: ...`, `call to ...`, `sink: ...`).
    pub what: String,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (kebab-case, e.g. `wall-clock`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or escape it).
    pub suggestion: String,
    /// True when a `spider-lint: allow(...)` escape suppressed this finding;
    /// allowed findings appear in the JSON report but do not fail the run.
    pub allowed: bool,
    /// Deep-analysis path from nondeterminism source to output sink, one hop
    /// per call-graph step. Empty for per-file findings.
    pub path: Vec<Hop>,
}

impl Diagnostic {
    /// Render as `file:line:col: deny[rule]: message` plus a help line and,
    /// for deep findings, one `via:` line per path hop.
    pub fn human(&self) -> String {
        let verb = if self.allowed { "allow" } else { "deny" };
        let mut out = format!(
            "{}:{}:{}: {}[{}]: {}",
            self.file, self.line, self.col, verb, self.rule, self.message
        );
        for h in &self.path {
            out.push_str(&format!(
                "\n  via: {}:{}:{}: {}",
                h.file, h.line, h.col, h.what
            ));
        }
        out.push_str(&format!("\n  help: {}", self.suggestion));
        out
    }
}

/// Aggregate result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, allowed or not, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that actually fail the run.
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.allowed)
    }

    /// Count of unsuppressed findings.
    pub fn violations(&self) -> usize {
        self.active().count()
    }

    /// Count of escape-suppressed findings.
    pub fn allowed(&self) -> usize {
        self.diagnostics.len() - self.violations()
    }

    /// Canonical ordering so output is byte-stable across runs.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"summary\":{");
        out.push_str(&format!(
            "\"files_scanned\":{},\"violations\":{},\"allowed\":{}}},\"diagnostics\":[",
            self.files_scanned,
            self.violations(),
            self.allowed()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            json_str(&mut out, d.rule);
            out.push_str(",\"file\":");
            json_str(&mut out, &d.file);
            out.push_str(&format!(",\"line\":{},\"col\":{}", d.line, d.col));
            out.push_str(",\"message\":");
            json_str(&mut out, &d.message);
            out.push_str(",\"suggestion\":");
            json_str(&mut out, &d.suggestion);
            out.push_str(&format!(",\"allowed\":{}", d.allowed));
            out.push_str(",\"path\":[");
            for (j, h) in d.path.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"file\":");
                json_str(&mut out, &h.file);
                out.push_str(&format!(",\"line\":{},\"col\":{}", h.line, h.col));
                out.push_str(",\"what\":");
                json_str(&mut out, &h.what);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Append `s` as a JSON string literal.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, file: &str, line: u32, allowed: bool) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            col: 1,
            message: "m \"quoted\"".into(),
            suggestion: "s".into(),
            allowed,
            path: Vec::new(),
        }
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report {
            diagnostics: vec![
                d("wall-clock", "b.rs", 2, false),
                d("entropy", "a.rs", 1, true),
            ],
            files_scanned: 2,
        };
        r.sort();
        assert_eq!(r.diagnostics[0].file, "a.rs");
        let j = r.to_json();
        assert!(j.contains("\"violations\":1"));
        assert!(j.contains("\"allowed\":1"));
        assert!(j.contains("m \\\"quoted\\\""));
        assert!(j.starts_with("{\"version\":1"));
    }

    #[test]
    fn human_format_is_clickable() {
        let h = d("unwrap-used", "crates/x/src/y.rs", 7, false).human();
        assert!(h.starts_with("crates/x/src/y.rs:7:1: deny[unwrap-used]:"));
        assert!(h.contains("help:"));
    }

    #[test]
    fn path_hops_render_in_human_and_json() {
        let mut diag = d("taint-path", "a.rs", 9, false);
        diag.path = vec![
            Hop {
                file: "b.rs".into(),
                line: 3,
                col: 5,
                what: "source: rayon `par_iter`".into(),
            },
            Hop {
                file: "a.rs".into(),
                line: 9,
                col: 1,
                what: "sink: `row` table emit".into(),
            },
        ];
        let h = diag.human();
        assert!(h.contains("via: b.rs:3:5: source: rayon `par_iter`"));
        assert!(h.contains("via: a.rs:9:1: sink:"));
        let r = Report {
            diagnostics: vec![diag],
            files_scanned: 1,
        };
        let j = r.to_json();
        assert!(j.contains("\"path\":[{\"file\":\"b.rs\",\"line\":3,\"col\":5"));
        assert!(j.contains("\"what\":\"sink: `row` table emit\""));
    }
}
