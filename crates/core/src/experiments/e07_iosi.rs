//! E7 — §VI-B: IOSI, recovering application I/O signatures from
//! server-side throughput logs.
//!
//! A periodic application (known ground truth) runs several times against
//! the production background mix; the only observable is the per-interval
//! server-side throughput log (what the DDN poller stores). IOSI must
//! recover the application's period and burst volume "at no cost to the
//! user and without taxing the storage subsystem".

use spider_simkit::{SimDuration, SimRng, SimTime, TimeSeries};
use spider_tools::iosi::{extract_signature, IosiConfig};
use spider_workload::generator::trace_to_series;
use spider_workload::mix::CenterWorkload;
use spider_workload::s3d::S3dConfig;

use crate::config::Scale;
use crate::report::Table;

/// Ground truth for the synthetic app.
struct Truth {
    period: SimDuration,
    burst_volume: f64,
}

/// One run's server log: the app plus uncorrelated background noise.
fn one_run(app: &S3dConfig, interval: SimDuration, seed: u64) -> (TimeSeries, Truth) {
    let mut rng = SimRng::seed_from_u64(seed);
    let app_trace = app.trace(&mut rng);
    let mut log = trace_to_series(&app_trace, interval);
    // Background: the analytics/visualization portion of the production
    // mix (clients 48..76 in the composer's ordering). The target app's
    // OST subset sees read-heavy analysis traffic as noise; competing
    // checkpoint apps land on other OSTs/namespaces and do not appear in
    // this server-side log slice.
    let bg = CenterWorkload::olcf_production().generate(app.runtime, &mut rng);
    let mut bg_log = TimeSeries::new(interval);
    for r in bg.iter().filter(|r| (48..76).contains(&r.client)) {
        bg_log.add(r.at, r.size as f64);
    }
    log = log.superpose(&bg_log);
    // Pad both to the same length horizon.
    log.add(SimTime::ZERO + app.runtime, 0.0);
    (
        log,
        Truth {
            period: app.output_period,
            burst_volume: app.checkpoint_bytes() as f64,
        },
    )
}

/// Run E7.
pub fn run(scale: Scale) -> Vec<Table> {
    // IOSI targets leadership-scale applications whose bursts are visible
    // over the center's background (S3D production runs used ~100k ranks).
    let ranks = match scale {
        Scale::Paper => 16_384,
        Scale::Small => 4_096,
    };
    let app = S3dConfig::small(ranks);
    let interval = SimDuration::from_secs(10);
    let runs: Vec<TimeSeries> = (0..4)
        .map(|i| one_run(&app, interval, 0xE7 + i).0)
        .collect();
    let truth = one_run(&app, interval, 0xE7).1;
    let sig = extract_signature(&runs, &IosiConfig::default());

    let mut table = Table::new(
        "E7: IOSI signature extraction from noisy server-side logs",
        &["quantity", "ground truth", "recovered"],
    );
    match sig {
        Some(sig) => {
            table.row(vec![
                "output period (s)".into(),
                format!("{:.0}", truth.period.as_secs_f64()),
                format!("{:.0}", sig.period.as_secs_f64()),
            ]);
            table.row(vec![
                "burst volume (GiB)".into(),
                format!("{:.2}", truth.burst_volume / (1u64 << 30) as f64),
                format!("{:.2}", sig.burst_volume / (1u64 << 30) as f64),
            ]);
            table.row(vec![
                "bursts per run".into(),
                format!("{}", app.checkpoint_times().len()),
                format!("{:.1}", sig.bursts_per_run),
            ]);
        }
        None => table.row(vec![
            "signature".into(),
            "present".into(),
            "NOT FOUND".into(),
        ]),
    }
    super::trace::experiment("E7", 1, 1);
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_recovers_the_period_within_tolerance() {
        let t = &run(Scale::Small)[0];
        assert!(t.len() >= 3, "signature found: {t}");
        let truth: f64 = t.rows[0][1].parse().unwrap();
        let got: f64 = t.rows[0][2].parse().unwrap();
        assert!(
            (got - truth).abs() / truth < 0.15,
            "period {got} vs {truth}"
        );
    }

    #[test]
    fn e7_recovers_burst_volume_within_tolerance() {
        let t = &run(Scale::Small)[0];
        let truth: f64 = t.rows[1][1].parse().unwrap();
        let got: f64 = t.rows[1][2].parse().unwrap();
        assert!(
            (got - truth).abs() / truth < 0.35,
            "volume {got} vs {truth}"
        );
    }
}
