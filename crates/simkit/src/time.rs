//! Simulated time.
//!
//! Time is a `u64` count of nanoseconds since simulation start. Nanosecond
//! resolution comfortably covers the dynamic range the center simulation
//! needs: single-disk command overheads (~tens of microseconds) up to the
//! 14-day purge window (~1.2e15 ns, far below `u64::MAX`).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_ns(s))
    }

    /// Whole nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier` (saturating: returns zero if `earlier`
    /// is in the future).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One nanosecond.
    pub const NANO: SimDuration = SimDuration(1);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000_000)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400 * 1_000_000_000)
    }

    /// Construct from fractional seconds (negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_ns(s))
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0, "cannot scale a duration by a negative factor");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

fn secs_f64_to_ns(s: f64) -> u64 {
    if s <= 0.0 || !s.is_finite() {
        if s.is_nan() {
            panic!("NaN is not a valid number of seconds");
        }
        if s > 0.0 {
            return u64::MAX; // +inf
        }
        return 0;
    }
    let ns = s * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 86_400_000_000_000 {
            write!(f, "{:.2}d", ns as f64 / 86_400e9)
        } else if ns >= 3_600_000_000_000 {
            write!(f, "{:.2}h", ns as f64 / 3_600e9)
        } else if ns >= 60_000_000_000 {
            write!(f, "{:.2}min", ns as f64 / 60e9)
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn fractional_seconds() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        // Negative clamps to zero rather than wrapping.
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        // Infinity saturates.
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_nanos(),
            u64::MAX
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_seconds_panics() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_secs(10);
        let t1 = t0 + SimDuration::from_secs(5);
        assert_eq!(t1, SimTime::from_secs(15));
        assert_eq!(t1 - t0, SimDuration::from_secs(5));
        assert_eq!(t0.since(t1), SimDuration::ZERO, "since saturates");
        assert_eq!(t1.since(t0), SimDuration::from_secs(5));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2_500));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        let huge = SimTime(u64::MAX - 1);
        assert_eq!(huge + SimDuration::from_secs(100), SimTime::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_millis(40).to_string(), "40.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_mins(6).to_string(), "6.00min");
        assert_eq!(SimDuration::from_days(14).to_string(), "14.00d");
    }

    #[test]
    fn fourteen_day_purge_window_fits() {
        // The purge policy's 14-day window must be representable.
        let d = SimDuration::from_days(14);
        assert!(d.as_nanos() < u64::MAX / 1000);
    }
}
