//! Sharded PDES scaling: one big simulation split across shards.
//!
//! Two workloads, both with the sequential path kept as the differential
//! oracle (results are asserted bit-identical inside this bench):
//!
//! 1. **Interference storm** (`rpcsim`): a mixed analytics + checkpoint
//!    trace against >= 16 OSTs, one shard per OST. The client -> OST map is
//!    static, so there is zero cross-shard traffic and the legal lookahead
//!    is the whole horizon — a single epoch window, embarrassingly parallel.
//! 2. **Federation storm** (E8d): cross-namespace metadata traffic with the
//!    1 ms cross-namespace RPC hop as the lookahead — thousands of epoch
//!    barriers and real cross-shard message flow.
//!
//! With `--smoke` or `--bench` on the command line the bench writes
//! `BENCH_pdes.json` (wall time, events/sec, barrier count, cross-shard
//! message ratio) into the workspace root; a bare invocation (`cargo test`
//! running the bench target) shrinks the shapes and writes nothing.

use std::hint::black_box;
use std::time::Instant;

use spider_core::experiments::e08_namespaces::federation_storm;
use spider_core::rpcsim::{run_interference, run_interference_sharded};
use spider_pfs::ost::{Ost, OstId};
use spider_simkit::{SimDuration, SimRng};
use spider_storage::disk::{Disk, DiskId, DiskSpec};
use spider_storage::raid::{RaidConfig, RaidGroup, RaidGroupId};
use spider_workload::generator::{generate_trace, merge_traces};
use spider_workload::spec::{IoRequest, StreamSpec};

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke") || !std::env::args().any(|a| a == "--bench")
}

/// JSON output is opt-in: `cargo test` runs this binary with neither flag
/// and must not dirty the worktree.
fn write_json() -> bool {
    std::env::args().any(|a| a == "--smoke" || a == "--bench")
}

fn osts(n: u32) -> Vec<Ost> {
    let cfg = RaidConfig::raid6_8p2();
    (0..n)
        .map(|g| {
            let members = (0..cfg.width())
                .map(|i| Disk::nominal(DiskId(g * 10 + i as u32), DiskSpec::nearline_sas_2tb()))
                .collect();
            Ost::new(OstId(g), RaidGroup::new(RaidGroupId(g), cfg, members))
        })
        .collect()
}

fn storm_trace(clients: u32, secs: u64) -> Vec<IoRequest> {
    let mut rng = SimRng::seed_from_u64(0x5C41E);
    let dur = SimDuration::from_secs(secs);
    let mut traces: Vec<_> = (0..clients)
        .map(|c| {
            let mut child = rng.fork(c as u64);
            generate_trace(&StreamSpec::analytics_read(), c, dur, &mut child)
        })
        .collect();
    traces.extend((0..clients).map(|c| {
        let mut child = rng.fork(1_000 + c as u64);
        generate_trace(
            &StreamSpec::checkpoint_restart(),
            clients + c,
            dur,
            &mut child,
        )
    }));
    merge_traces(traces)
}

/// Best-of-`iters` wall time in milliseconds.
fn time_ms<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[allow(clippy::too_many_lines)]
fn main() {
    spider_obs::init_from_env();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let (n_osts, clients, secs, fed_ns, fed_ops, iters) = if smoke() {
        (16u32, 16u32, 120u64, 8usize, 1_000u32, 3u32)
    } else {
        (32, 64, 600, 16, 10_000, 5)
    };

    // ---- interference storm, one shard per OST ----
    let osts = osts(n_osts);
    let trace = storm_trace(clients, secs);
    let horizon = SimDuration::from_secs(secs);

    let single_ms = time_ms(iters, || run_interference(&osts, &trace, horizon));
    rayon::set_spare_thread_budget(0);
    let shard0_ms = time_ms(iters, || run_interference_sharded(&osts, &trace, horizon));
    rayon::set_spare_thread_budget(7);
    let shard7_ms = time_ms(iters, || run_interference_sharded(&osts, &trace, horizon));

    // Determinism spot-check outside the timed loops: the single-engine
    // oracle and both thread budgets must agree bit for bit.
    rayon::set_spare_thread_budget(0);
    let (rep0, istats) = run_interference_sharded(&osts, &trace, horizon);
    rayon::set_spare_thread_budget(7);
    let (rep7, _) = run_interference_sharded(&osts, &trace, horizon);
    let oracle = run_interference(&osts, &trace, horizon);
    for (a, b) in [
        (&oracle.reads, &rep0.reads),
        (&oracle.writes, &rep0.writes),
        (&rep0.reads, &rep7.reads),
        (&rep0.writes, &rep7.writes),
    ] {
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency.mean().to_bits(), b.latency.mean().to_bits());
    }

    // ---- federation storm, one shard per namespace ----
    rayon::set_spare_thread_budget(0);
    let fed0_ms = time_ms(iters, || {
        federation_storm(fed_ns, fed_ops, 0.2, 0xFED).run()
    });
    rayon::set_spare_thread_budget(7);
    let fed7_ms = time_ms(iters, || {
        federation_storm(fed_ns, fed_ops, 0.2, 0xFED).run()
    });
    let oracle_ms = time_ms(iters, || {
        federation_storm(fed_ns, fed_ops, 0.2, 0xFED).run_sequential()
    });
    let fed = federation_storm(fed_ns, fed_ops, 0.2, 0xFED).run();
    let fed_oracle = federation_storm(fed_ns, fed_ops, 0.2, 0xFED).run_sequential();
    for (p, s) in fed.outs.iter().zip(&fed_oracle.outs) {
        assert_eq!(p.latency.mean().to_bits(), s.latency.mean().to_bits());
    }
    rayon::set_spare_thread_budget(cores.saturating_sub(1));

    let ievents_per_sec = istats.events as f64 / (shard0_ms / 1e3);
    let fevents_per_sec = fed.stats.events as f64 / (fed0_ms / 1e3);
    let fratio = fed.stats.cross_messages as f64 / fed.stats.events as f64;

    println!(
        "pdes_scale interference: {} shards, {} events, {} barriers, \
         single-engine {single_ms:.1}ms, sharded budget0 {shard0_ms:.1}ms, budget7 {shard7_ms:.1}ms",
        istats.shards, istats.events, istats.epochs
    );
    println!(
        "pdes_scale federation: {} shards, {} events, {} barriers, \
         cross-shard ratio {fratio:.3}, budget0 {fed0_ms:.1}ms, budget7 {fed7_ms:.1}ms, oracle {oracle_ms:.1}ms",
        fed.stats.shards, fed.stats.events, fed.stats.epochs
    );

    if write_json() {
        let json = format!(
            r#"{{
  "machine": {{"cores": {cores}, "note": "numbers measured on this machine; with one core a budget-7 run time-shares a single core, so it measures thread-coordination overhead, not scaling (cheap for the interference storm's single barrier, dominated by per-epoch scoped-thread spawns for the federation storm's thousands of fine-grained barriers — on multi-core hosts those spawns overlap shard work). Sharding already beats the single engine on one core because each shard pops from a heap 1/shards the size. The interference storm is {n_shards} independent shards in one epoch window (zero cross-shard traffic), so on an 8-core host the sharded run is expected >= 4x the single-engine wall time (8 shards in flight at a time, fixed-order flush + canonical completion sort adding O(events log events) once); bit-identity across thread counts is asserted by this bench and by crates/simkit/tests/pdes_threads.rs"}},
  "command": "cargo bench -p spider-bench --bench pdes_scale -- --bench",
  "shape": {{"interference_osts": {n_osts}, "interference_clients": {n_clients}, "trace_secs": {secs}, "federation_namespaces": {fed_ns}, "federation_ops_per_ns": {fed_ops}, "federation_remote_share": 0.2, "smoke": {is_smoke}}},
  "interference": {{
    "shards": {n_shards},
    "events": {ievents},
    "epoch_barriers": {iepochs},
    "cross_shard_message_ratio": 0.0,
    "wall_ms": {{"single_engine": {single_ms:.2}, "sharded_budget0": {shard0_ms:.2}, "sharded_budget7": {shard7_ms:.2}}},
    "events_per_sec_sharded_budget0": {ieps:.0}
  }},
  "federation": {{
    "shards": {fshards},
    "events": {fevents},
    "epoch_barriers": {fepochs},
    "cross_shard_messages": {fmsgs},
    "cross_shard_message_ratio": {fratio:.4},
    "wall_ms": {{"parallel_budget0": {fed0_ms:.2}, "parallel_budget7": {fed7_ms:.2}, "sequential_oracle": {oracle_ms:.2}}},
    "events_per_sec_budget0": {feps:.0}
  }},
  "speedups": {{
    "interference_sharded_vs_single_engine_measured": {imeasured:.2},
    "determinism_overhead_budget7_on_this_machine": {ioverhead:.2},
    "interference_8_threads_expected": ">=4x vs single engine (independent shards, one barrier; see machine note)"
  }}
}}
"#,
            n_shards = istats.shards,
            n_clients = clients,
            is_smoke = smoke(),
            ievents = istats.events,
            iepochs = istats.epochs,
            ieps = ievents_per_sec,
            fshards = fed.stats.shards,
            fevents = fed.stats.events,
            fepochs = fed.stats.epochs,
            fmsgs = fed.stats.cross_messages,
            feps = fevents_per_sec,
            imeasured = single_ms / shard0_ms,
            ioverhead = shard7_ms / shard0_ms,
        );
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let path = std::path::Path::new(root).join("BENCH_pdes.json");
        std::fs::write(&path, json).expect("workspace root is writable");
        println!("pdes_scale: wrote {}", path.display());
    }
    if let Some(files) = spider_obs::finish() {
        eprintln!("obs: wrote {}", files.dir.display());
    }
}
