//! Timestep engine scaling: event-driven vs fixed-step solving on the
//! checkpoint storm (the E20 shape: 20 waves of 10 co-starting identical
//! jobs, one wave every 6 minutes, over a 2 h horizon — 200 jobs total).
//!
//! The fixed-step engine re-solves the max-min allocation every 5 s wall
//! step whether or not anything changed: O(horizon / step) solves. The
//! event-driven engine holds one incremental `FlowSession` and solves only
//! at job arrivals and completions: O(#job events). This bench measures the
//! end-to-end `run_timestep` wall time for both and prints the solve
//! counts; `BENCH_timestep.json` records a full run.
//!
//! Smoke mode (`--smoke`, or any invocation without `--bench`, e.g.
//! `cargo test` running the bench target) shrinks the storm to 6 waves of
//! 4 jobs over 36 min so the binary stays fast in CI and test runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spider_core::center::Center;
use spider_core::config::CenterConfig;
use spider_core::timestep::{run_timestep, Job, SteppingMode, TimestepConfig};
use spider_simkit::{SimDuration, SimTime, MIB};

/// The checkpoint storm: `waves` waves, `jobs_per_wave` identical jobs each,
/// one wave every `period` (the `e20_event_stepping` shape).
fn storm(waves: u64, jobs_per_wave: u32, period: SimDuration) -> Vec<Job> {
    let mut jobs = Vec::new();
    for w in 0..waves {
        for k in 0..jobs_per_wave {
            jobs.push(Job {
                fs: (k % 2) as usize,
                clients: 16,
                bytes_per_client: 8 << 30,
                transfer_size: MIB,
                start: SimTime::ZERO + period * w,
                write: true,
                optimal_placement: false,
            });
        }
    }
    jobs
}

/// `--smoke` forces the small shape even under `cargo bench` (which always
/// passes `--bench`); without `--bench` (e.g. `cargo test`) smoke is
/// automatic.
fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke") || !std::env::args().any(|a| a == "--bench")
}

fn bench_timestep_scale(c: &mut Criterion) {
    spider_obs::init_from_env();
    let (waves, jobs_per_wave, horizon) = if smoke() {
        (6u64, 4u32, SimDuration::from_mins(36))
    } else {
        (20, 10, SimDuration::from_hours(2))
    };
    let center = Center::build(CenterConfig::small());
    let jobs = storm(waves, jobs_per_wave, SimDuration::from_mins(6));
    let event_cfg = TimestepConfig {
        horizon,
        ..TimestepConfig::default()
    };
    let fixed_cfg = TimestepConfig {
        mode: SteppingMode::FixedStep,
        ..event_cfg.clone()
    };

    // Solve counts are deterministic, so report them once outside the timed
    // loops (they feed the "solves" fields of BENCH_timestep.json).
    let ev = run_timestep(&center, &jobs, &event_cfg);
    let fx = run_timestep(&center, &jobs, &fixed_cfg);
    println!(
        "timestep_scale: {} jobs over {horizon}: event-driven {} solves, \
         fixed-step {} solves ({:.1}x fewer)",
        jobs.len(),
        ev.solves,
        fx.solves,
        fx.solves as f64 / ev.solves.max(1) as f64
    );

    let mut g = c.benchmark_group("timestep_scale");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(10));
    g.sample_size(10);
    g.bench_function("storm_event_driven", |b| {
        b.iter(|| black_box(run_timestep(&center, &jobs, &event_cfg)));
    });
    g.bench_function("storm_fixed_step", |b| {
        b.iter(|| black_box(run_timestep(&center, &jobs, &fixed_cfg)));
    });
    g.finish();
    if let Some(files) = spider_obs::finish() {
        eprintln!("obs: wrote {}", files.dir.display());
    }
}

criterion_group!(benches, bench_timestep_scale);
criterion_main!(benches);
