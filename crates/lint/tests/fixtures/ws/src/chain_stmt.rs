//! Fixture: regression for escape attachment on multi-line chained calls.
//! The `par-float-reduce` finding fires on the `.sum()` token four lines
//! below the line the statement opens on; the escape above the statement
//! must still cover it (and must NOT be reported as unused-allow).

pub fn chained_reduce(v: &[f64]) -> f64 {
    // spider-lint: allow(par-float-reduce, reason = "fixture: escape on the statement's first line covers a finding further down the chain")
    v.par_iter()
        .map(|x| x * 2.0)
        .filter(|x| *x > 0.0)
        .map(|x| x + 1.0)
        .sum()
}
