//! CLI for spider-lint.
//!
//! ```text
//! cargo run -p spider-lint -- [--deep] [--deny-all] [--json PATH] [--root DIR] [PATH-FILTER ...]
//! ```
//!
//! Without `--deny-all` the run is advisory (diagnostics printed, exit 0);
//! with it, any unsuppressed violation exits 2. `--deep` adds the workspace
//! call-graph taint pass (source→sink determinism paths — see DESIGN.md
//! § "Deep analysis"). `--json PATH` additionally writes the
//! machine-readable report. Positional arguments restrict the scan to paths
//! containing the given substrings (used by the fixtures).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut deep = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut filters: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-all" => deny_all = true,
            "--deep" => deep = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            f if !f.starts_with('-') => filters.push(f.to_owned()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")); // spider-lint: allow(env-read, reason = "CLI entry point resolves its workspace root from the invocation directory")
            match spider_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "spider-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(3);
                }
            }
        }
    };

    let result = if deep {
        spider_lint::lint_workspace_deep(&root, &filters)
    } else {
        spider_lint::lint_workspace(&root, &filters)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spider-lint: {e}");
            return ExitCode::from(3);
        }
    };

    for d in &report.diagnostics {
        println!("{}", d.human());
    }
    println!(
        "spider-lint: {} files, {} violation(s), {} allowed escape(s)",
        report.files_scanned,
        report.violations(),
        report.allowed()
    );

    if let Some(p) = json_path {
        if let Err(e) = std::fs::write(&p, report.to_json()) {
            eprintln!("spider-lint: cannot write {}: {e}", p.display());
            return ExitCode::from(3);
        }
        println!("spider-lint: report written to {}", p.display());
    }

    if deny_all && report.violations() > 0 {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("spider-lint: {err}");
    }
    eprintln!(
        "usage: spider-lint [--deep] [--deny-all] [--json PATH] [--root DIR] [PATH-FILTER ...]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}
