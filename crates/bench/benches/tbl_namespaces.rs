//! Bench for E8: namespace strategy, fullness and purge — plus the
//! stripe-count stat-cost ablation from DESIGN.md (Lustre best practices).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spider_core::config::Scale;
use spider_core::experiments::e08_namespaces;
use spider_pfs::layout::StripeLayout;
use spider_pfs::namespace::{FileMeta, Namespace};
use spider_pfs::ost::OstId;
use spider_simkit::SimTime;

fn populated(stripe_count: u32, files: usize) -> Namespace {
    let mut ns = Namespace::new();
    let dir = ns.mkdir_p("/proj").unwrap();
    for f in 0..files {
        ns.create_file(
            dir,
            &format!("f{f}"),
            FileMeta {
                size: 64 << 20,
                atime: SimTime::ZERO,
                mtime: SimTime::ZERO,
                ctime: SimTime::ZERO,
                stripe: StripeLayout::new((0..stripe_count).map(OstId).collect()),
                project: 0,
            },
        )
        .unwrap();
    }
    ns
}

fn stat_storm_cost(ns: &Namespace) -> u64 {
    // One MDS stat per inode + one glimpse per stripe object.
    let mut ops = 0u64;
    ns.visit(ns.root(), |n| {
        ops += 1;
        if let Some(m) = n.file() {
            ops += m.stripe.stat_fanout(m.size) as u64;
        }
    });
    ops
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tbl_namespaces");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    g.bench_function("experiment_e8_small", |b| {
        b.iter(|| black_box(e08_namespaces::run(Scale::Small)));
    });
    // Ablation: stat cost by stripe count (the §VII best practice).
    for stripes in [1u32, 4, 16] {
        let ns = populated(stripes, 20_000);
        g.bench_function(format!("stat_storm_20k_files_stripe{stripes}"), |b| {
            b.iter(|| black_box(stat_storm_cost(&ns)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
